//! Roofline model of the contest's embedded GPU (Jetson TX2 class).
//!
//! The GPU rows of Table 2 are published constants; this model makes
//! the *mechanism* behind them reproducible: an embedded GPU wins on
//! raw throughput (half-precision peak well above the FPGA's DSP
//! array) but pays an order of magnitude more board power, so the
//! energy-per-image comparison flips in the FPGA's favor — the paper's
//! headline energy-efficiency claim.

use serde::{Deserialize, Serialize};

/// A simple roofline model of an embedded GPU.
///
/// # Example
///
/// ```
/// use codesign_baselines::GpuModel;
///
/// let tx2 = GpuModel::tx2();
/// // Tiny-Yolo class workload: ~3.5 GMAC, ~60 MB of traffic.
/// let lat = tx2.latency_ms(3.5e9, 60.0e6);
/// assert!(lat > 1.0 && lat < 100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuModel {
    /// Peak half-precision throughput in MAC/s.
    pub peak_macs_per_s: f64,
    /// DRAM bandwidth in bytes/s.
    pub dram_bytes_per_s: f64,
    /// Fraction of peak sustained by convolution kernels.
    pub efficiency: f64,
    /// Board power under load, watts.
    pub load_power_w: f64,
    /// Fixed per-frame overhead (kernel launches, preprocessing), ms.
    pub frame_overhead_ms: f64,
}

impl GpuModel {
    /// Jetson TX2 at the contest's 854 MHz GPU clock: ~1.33 TFLOP/s
    /// fp16 (0.665 TMAC/s), 59.7 GB/s LPDDR4, ~35% sustained conv
    /// efficiency, ~12 W board power.
    pub fn tx2() -> Self {
        Self {
            peak_macs_per_s: 0.665e12,
            dram_bytes_per_s: 59.7e9,
            efficiency: 0.35,
            load_power_w: 12.0,
            frame_overhead_ms: 8.0,
        }
    }

    /// Roofline latency of one frame: the slower of compute and memory,
    /// plus fixed overhead.
    pub fn latency_ms(&self, macs: f64, dram_bytes: f64) -> f64 {
        let compute_s = macs / (self.peak_macs_per_s * self.efficiency);
        let memory_s = dram_bytes / self.dram_bytes_per_s;
        compute_s.max(memory_s) * 1e3 + self.frame_overhead_ms
    }

    /// Energy per frame in joules.
    pub fn joules_per_image(&self, macs: f64, dram_bytes: f64) -> f64 {
        self.load_power_w * self.latency_ms(macs, dram_bytes) * 1e-3
    }
}

/// MAC and traffic estimates for the contest GPU entries' backbones on
/// DAC-SDC-sized inputs: `(name, macs, dram_bytes, published_iou)`.
pub fn contest_gpu_workloads() -> Vec<(&'static str, f64, f64, f64)> {
    vec![
        ("Yolo", 7.0e9, 120.0e6, 0.698),
        ("Tiny-Yolo (2nd)", 5.6e9, 90.0e6, 0.691),
        ("Tiny-Yolo (3rd)", 6.2e9, 95.0e6, 0.685),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx2_reproduces_contest_latency_band() {
        // Published GPU latencies are 39.5-42.3 ms; the roofline with
        // the contest workloads should land in that neighborhood.
        let tx2 = GpuModel::tx2();
        for (name, macs, bytes, _) in contest_gpu_workloads() {
            let lat = tx2.latency_ms(macs, bytes);
            assert!(
                (20.0..70.0).contains(&lat),
                "{name}: {lat} ms outside the plausible band"
            );
        }
    }

    #[test]
    fn gpu_energy_per_image_matches_published_order() {
        // Published: 0.44-0.53 J/pic.
        let tx2 = GpuModel::tx2();
        for (name, macs, bytes, _) in contest_gpu_workloads() {
            let jpp = tx2.joules_per_image(macs, bytes);
            assert!((0.2..0.9).contains(&jpp), "{name}: {jpp} J/pic out of band");
        }
    }

    #[test]
    fn memory_bound_workloads_hit_the_bandwidth_roof() {
        let tx2 = GpuModel::tx2();
        // Tiny compute, huge traffic: latency tracks bytes/bandwidth.
        let lat = tx2.latency_ms(1.0e6, 59.7e9 / 10.0);
        assert!((lat - (100.0 + tx2.frame_overhead_ms)).abs() < 1.0);
    }

    #[test]
    fn compute_bound_workloads_scale_with_macs() {
        let tx2 = GpuModel::tx2();
        let one = tx2.latency_ms(2.0e9, 1.0) - tx2.frame_overhead_ms;
        let two = tx2.latency_ms(4.0e9, 1.0) - tx2.frame_overhead_ms;
        assert!((two / one - 2.0).abs() < 0.01);
    }
}
