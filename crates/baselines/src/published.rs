//! Published DAC-SDC 2018 results (paper Table 2, data from the contest report, arXiv:1809.00110).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Contest category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Category {
    /// PYNQ-Z1 FPGA category.
    Fpga,
    /// Jetson TX2 GPU category.
    Gpu,
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Category::Fpga => write!(f, "FPGA"),
            Category::Gpu => write!(f, "GPU"),
        }
    }
}

/// Resource utilization percentages as published (LUT, DSP, BRAM, FF).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PublishedUtilization {
    /// LUT utilization in percent.
    pub lut: f64,
    /// DSP utilization in percent.
    pub dsp: f64,
    /// BRAM utilization in percent.
    pub bram: f64,
    /// FF utilization in percent.
    pub ff: f64,
}

/// One leaderboard row of Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PublishedResult {
    /// Entry name, e.g. `"1st in FPGA"`.
    pub name: String,
    /// Contest category.
    pub category: Category,
    /// Base model, when published (e.g. `"SSD"`, `"Tiny-Yolo"`).
    pub model: Option<String>,
    /// Accuracy on the official 50 K-image set.
    pub iou: f64,
    /// Single-frame latency in milliseconds.
    pub latency_ms: f64,
    /// Clock in MHz at which the latency was reported.
    pub clock_mhz: f64,
    /// Throughput over the full 50 K-image run.
    pub fps: f64,
    /// Board power in watts.
    pub power_w: f64,
    /// Total energy for the 50 K images in kilojoules.
    pub energy_kj: f64,
    /// Energy per image in joules.
    pub j_per_pic: f64,
    /// Resource utilization (FPGA entries only).
    pub utilization: Option<PublishedUtilization>,
}

/// The six comparison rows of Table 2.
pub fn dac_sdc_2018_results() -> Vec<PublishedResult> {
    let u = |lut, dsp, bram, ff| Some(PublishedUtilization { lut, dsp, bram, ff });
    vec![
        PublishedResult {
            name: "1st in FPGA".into(),
            category: Category::Fpga,
            model: Some("SSD".into()),
            iou: 0.624,
            latency_ms: 84.6,
            clock_mhz: 150.0,
            fps: 11.96,
            power_w: 4.2,
            energy_kj: 17.56,
            j_per_pic: 0.35,
            utilization: u(83.9, 100.0, 78.9, 54.2),
        },
        PublishedResult {
            name: "2nd in FPGA".into(),
            category: Category::Fpga,
            model: None,
            iou: 0.492,
            latency_ms: 38.5,
            clock_mhz: 150.0,
            fps: 25.97,
            power_w: 2.5,
            energy_kj: 4.81,
            j_per_pic: 0.10,
            utilization: u(88.0, 78.0, 77.0, 62.0),
        },
        PublishedResult {
            name: "3rd in FPGA".into(),
            category: Category::Fpga,
            model: None,
            iou: 0.573,
            latency_ms: 136.1,
            clock_mhz: 150.0,
            fps: 7.35,
            power_w: 2.6,
            energy_kj: 17.69,
            j_per_pic: 0.35,
            utilization: u(63.0, 86.0, 95.0, 22.0),
        },
        PublishedResult {
            name: "1st in GPU".into(),
            category: Category::Gpu,
            model: Some("Yolo".into()),
            iou: 0.698,
            latency_ms: 40.7,
            clock_mhz: 854.0,
            fps: 24.55,
            power_w: 12.6,
            energy_kj: 25.66,
            j_per_pic: 0.51,
            utilization: None,
        },
        PublishedResult {
            name: "2nd in GPU".into(),
            category: Category::Gpu,
            model: Some("Tiny-Yolo".into()),
            iou: 0.691,
            latency_ms: 39.5,
            clock_mhz: 854.0,
            fps: 25.3,
            power_w: 13.3,
            energy_kj: 26.28,
            j_per_pic: 0.53,
            utilization: None,
        },
        PublishedResult {
            name: "3rd in GPU".into(),
            category: Category::Gpu,
            model: Some("Tiny-Yolo".into()),
            iou: 0.685,
            latency_ms: 42.3,
            clock_mhz: 854.0,
            fps: 23.64,
            power_w: 10.3,
            energy_kj: 21.79,
            j_per_pic: 0.44,
            utilization: None,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_rows_three_per_category() {
        let rows = dac_sdc_2018_results();
        assert_eq!(rows.len(), 6);
        assert_eq!(
            rows.iter().filter(|r| r.category == Category::Fpga).count(),
            3
        );
        assert_eq!(
            rows.iter().filter(|r| r.category == Category::Gpu).count(),
            3
        );
    }

    #[test]
    fn fpga_first_place_matches_paper() {
        let rows = dac_sdc_2018_results();
        let first = &rows[0];
        assert_eq!(first.model.as_deref(), Some("SSD"));
        assert!((first.iou - 0.624).abs() < 1e-9);
        assert!((first.latency_ms - 84.6).abs() < 1e-9);
        assert_eq!(first.utilization.unwrap().dsp, 100.0);
    }

    #[test]
    fn energy_columns_are_consistent() {
        // j_per_pic x 50_000 images should approximate energy_kj.
        for r in dac_sdc_2018_results() {
            let implied_kj = r.j_per_pic * 50_000.0 / 1000.0;
            assert!(
                (implied_kj - r.energy_kj).abs() / r.energy_kj < 0.15,
                "{}: {implied_kj} vs {}",
                r.name,
                r.energy_kj
            );
        }
    }

    #[test]
    fn gpu_rows_use_more_power_than_fpga_rows() {
        let rows = dac_sdc_2018_results();
        let max_fpga = rows
            .iter()
            .filter(|r| r.category == Category::Fpga)
            .map(|r| r.power_w)
            .fold(0.0, f64::max);
        let min_gpu = rows
            .iter()
            .filter(|r| r.category == Category::Gpu)
            .map(|r| r.power_w)
            .fold(f64::INFINITY, f64::min);
        assert!(min_gpu > max_fpga);
    }
}
