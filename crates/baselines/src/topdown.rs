//! The executable top-down flow baseline.
//!
//! The paper contrasts its bottom-up co-design with the contest winner's
//! top-down approach: "starting from a standard DNN-based detector
//! (SSD); after network compression, the DNN is small enough that
//! satisfies both hardware constraints and performance demands"
//! (Sec. 6). This module makes that flow executable on the same
//! substrate: an SSD-style conv3x3 backbone is built for accuracy
//! first, then uniformly channel-pruned until the accelerator fits the
//! device and meets the latency target, paying a compression penalty on
//! accuracy for every pruning round.

use codesign_dnn::builder::DnnBuilder;
use codesign_dnn::bundle::{bundle_by_id, BundleId};
use codesign_dnn::quant::Activation;
use codesign_dnn::space::DesignPoint;
use codesign_sim::device::FpgaDevice;
use codesign_sim::error::SimError;
use codesign_sim::pipeline::{simulate, AccelConfig};
use codesign_sim::report::SimReport;
use serde::{Deserialize, Serialize};

/// Accuracy cost of one 25% channel-pruning round (post-compression
/// fine-tuning never fully recovers; ~1 IoU point per aggressive round
/// is in line with published compression results).
pub const PRUNE_ROUND_PENALTY: f64 = 0.010;

/// Channel shrink factor per pruning round.
pub const PRUNE_FACTOR: f64 = 0.75;

/// Result of the top-down flow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopDownResult {
    /// Channel-pruning rounds applied before the design fit.
    pub prune_rounds: usize,
    /// Final channel cap after pruning.
    pub max_channels: usize,
    /// Estimated IoU after compression penalties.
    pub iou: f64,
    /// Latency in milliseconds at the evaluation clock.
    pub latency_ms: f64,
    /// Final synthesis-style report.
    pub report: SimReport,
}

/// The top-down compress-then-map flow.
///
/// # Example
///
/// ```
/// use codesign_baselines::TopDownFlow;
/// use codesign_sim::device::pynq_z1;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let result = TopDownFlow::new(pynq_z1()).run(100.0, 85.0)?;
/// assert!(result.prune_rounds > 0, "SSD never fits without compression");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TopDownFlow {
    device: FpgaDevice,
    /// Accuracy the uncompressed detector would reach with unlimited
    /// hardware (SSD-class detectors lead the contest's accuracy range).
    pub uncompressed_iou: f64,
}

impl TopDownFlow {
    /// Creates the flow for a device.
    pub fn new(device: FpgaDevice) -> Self {
        Self {
            device,
            uncompressed_iou: 0.70,
        }
    }

    /// The SSD-style starting design: a deep conv3x3 backbone (Bundle
    /// 10 is conv3x3 + conv3x3, the VGG-ish block SSD builds on) sized
    /// for accuracy, not for the device.
    pub fn uncompressed_point(&self) -> DesignPoint {
        let vgg_block = bundle_by_id(BundleId(10)).expect("bundle 10 exists");
        let mut p = DesignPoint::initial(vgg_block, 5);
        p.base_channels = 64;
        p.max_channels = 512;
        p.activation = Activation::Relu;
        p.parallel_factor = 64;
        p
    }

    /// Runs compress-until-fit: uniform channel pruning (25% per round)
    /// until the mapped accelerator fits the device *and* meets
    /// `latency_target_ms` at `clock_mhz`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when even the fully pruned
    /// network misses the constraints, or propagates simulator errors.
    pub fn run(&self, clock_mhz: f64, latency_target_ms: f64) -> Result<TopDownResult, SimError> {
        let builder = DnnBuilder::new();
        let mut point = self.uncompressed_point();
        let mut iou = self.uncompressed_iou;
        for round in 0..12 {
            let Ok(dnn) = builder.build(&point) else {
                return Err(SimError::InvalidConfig {
                    reason: "compressed network no longer elaborates".into(),
                });
            };
            // The top-down flow maxes out the DSP array for whatever
            // network survived compression (the contest winner reports
            // 100% DSP): pick the largest PF whose accelerator fits.
            let mut best: Option<SimReport> = None;
            let mut pf = 256;
            while pf >= 16 {
                point.parallel_factor = pf;
                let cfg = AccelConfig::for_point(&point);
                let report = simulate(&dnn, &cfg, &self.device)?;
                if self.device.check_fit(&report.resources).is_ok() {
                    best = Some(report);
                    break;
                }
                pf -= 16;
            }
            if let Some(report) = best {
                let latency_ms = report.latency_ms(clock_mhz);
                if latency_ms <= latency_target_ms {
                    return Ok(TopDownResult {
                        prune_rounds: round,
                        max_channels: point.max_channels,
                        iou,
                        latency_ms,
                        report,
                    });
                }
            }
            // Prune: shrink every channel cap by 25% and pay the
            // compression penalty.
            point.max_channels = ((point.max_channels as f64 * PRUNE_FACTOR) as usize).max(32);
            point.base_channels = ((point.base_channels as f64 * PRUNE_FACTOR) as usize).max(16);
            iou -= PRUNE_ROUND_PENALTY;
        }
        Err(SimError::InvalidConfig {
            reason: "top-down flow failed to meet constraints after 12 pruning rounds".into(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codesign_sim::device::pynq_z1;

    #[test]
    fn ssd_needs_compression_to_fit() {
        let flow = TopDownFlow::new(pynq_z1());
        let result = flow.run(100.0, 90.0).unwrap();
        assert!(
            result.prune_rounds >= 2,
            "only {} rounds",
            result.prune_rounds
        );
        assert!(result.max_channels < 512);
        assert!(result.iou < flow.uncompressed_iou);
    }

    #[test]
    fn result_fits_device_and_target() {
        let result = TopDownFlow::new(pynq_z1()).run(100.0, 90.0).unwrap();
        assert!(pynq_z1().check_fit(&result.report.resources).is_ok());
        assert!(result.latency_ms <= 90.0);
    }

    #[test]
    fn tighter_target_costs_more_accuracy() {
        let loose = TopDownFlow::new(pynq_z1()).run(100.0, 150.0).unwrap();
        let tight = TopDownFlow::new(pynq_z1()).run(100.0, 60.0).unwrap();
        assert!(tight.prune_rounds >= loose.prune_rounds);
        assert!(tight.iou <= loose.iou);
    }

    #[test]
    fn impossible_target_is_an_error() {
        let err = TopDownFlow::new(pynq_z1()).run(100.0, 0.01).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig { .. }));
    }
}
