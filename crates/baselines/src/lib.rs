//! Baselines for the co-design comparison (paper Table 2 and Sec. 6).
//!
//! Three kinds of comparators:
//!
//! * [`published`] — the DAC-SDC 2018 leaderboard numbers the paper
//!   compares against (FPGA 1st-3rd place on PYNQ-Z1, GPU 1st-3rd place
//!   on TX2), transcribed from Table 2 / the contest report (arXiv:1809.00110).
//! * [`topdown`] — an *executable* top-down flow baseline: start from a
//!   large SSD-like detector designed for accuracy, compress it until
//!   it fits the device, then map it onto the same Tile-Arch
//!   accelerator. This makes the paper's methodology comparison
//!   (bottom-up co-design vs. top-down compress-then-map, Sec. 6)
//!   reproducible rather than citation-only.
//! * [`gpu`] — a roofline model of the TX2-class embedded GPU used by
//!   the contest's GPU category, for energy-efficiency comparisons.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gpu;
pub mod published;
pub mod topdown;

pub use gpu::GpuModel;
pub use published::{dac_sdc_2018_results, Category, PublishedResult};
pub use topdown::TopDownFlow;
