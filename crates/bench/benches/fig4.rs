//! Criterion bench for Fig. 4: regenerates the coarse-grained Bundle
//! evaluation for both DNN-construction methods and reports the
//! selected Pareto set.

use codesign_bench::experiments::{default_device, fig4, parallelism_from_env};
use codesign_core::evaluate::EvalMethod;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    let dev = default_device();
    let parallelism = parallelism_from_env();
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.bench_function("method1_fixed_head_tail", |b| {
        b.iter(|| fig4(black_box(EvalMethod::FixedHeadTail), &dev, parallelism).unwrap())
    });
    group.bench_function("method2_replicated", |b| {
        b.iter(|| {
            fig4(
                black_box(EvalMethod::Replicated { n: 3 }),
                &dev,
                parallelism,
            )
            .unwrap()
        })
    });
    group.finish();

    // Regenerate and print the artifact once so `cargo bench` output
    // carries the paper comparison.
    let (_, selected) = fig4(EvalMethod::Replicated { n: 3 }, &dev, parallelism).unwrap();
    let ids: Vec<usize> = selected.iter().map(|b| b.0).collect();
    println!("fig4: selected bundles {ids:?} (paper: [1, 3, 13, 15, 17])");
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
