//! Criterion bench for the Sec. 6 ablation: bottom-up co-design vs. the
//! executable top-down compress-then-map baseline.

use codesign_bench::experiments::{ablation, default_device};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_ablation(c: &mut Criterion) {
    let dev = default_device();
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("codesign_vs_topdown", |b| {
        b.iter(|| ablation(&dev).unwrap())
    });
    group.finish();

    let out = ablation(&dev).unwrap();
    println!(
        "ablation: co-design IoU {:.3} vs top-down IoU {:.3} at {:.0} ms target",
        out.codesign_iou, out.topdown.iou, out.latency_target_ms
    );
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
