//! Parallel-scaling bench: the Fig. 4 coarse-evaluation workload at 1
//! vs N worker threads, plus a co-design flow run reporting the shared
//! estimate-cache hit rate and cross-thread-count determinism.

use codesign_bench::experiments::{default_device, fig4};
use codesign_core::evaluate::EvalMethod;
use codesign_core::flow::{CoDesignFlow, FlowConfig};
use codesign_core::parallel::Parallelism;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;

/// Worker counts compared; 4 matches the acceptance target (≥ 2×
/// speedup at 4 threads on a ≥ 4-core host).
const THREAD_COUNTS: [usize; 2] = [1, 4];

fn small_flow(threads: usize) -> CoDesignFlow {
    CoDesignFlow::new(FlowConfig {
        targets_fps: vec![15.0],
        candidates_per_bundle: 3,
        coarse_pf_sweep: vec![16],
        parallelism: Parallelism::Fixed(threads),
        ..FlowConfig::for_device(default_device())
    })
}

fn bench_fig4_parallel(c: &mut Criterion) {
    let dev = default_device();
    let mut group = c.benchmark_group("fig4_parallel");
    group.sample_size(5);
    for threads in THREAD_COUNTS {
        group.bench_function(&format!("coarse/threads{threads}"), |b| {
            b.iter(|| {
                fig4(
                    EvalMethod::Replicated { n: 3 },
                    &dev,
                    Parallelism::Fixed(threads),
                )
                .unwrap()
            })
        });
    }
    for threads in THREAD_COUNTS {
        group.bench_function(&format!("flow/threads{threads}"), |b| {
            b.iter(|| small_flow(threads).run().unwrap())
        });
    }
    group.finish();

    // One timed head-to-head run: wall clock, cache hit rate, and the
    // byte-stability guarantee across thread counts.
    let t0 = Instant::now();
    let seq = small_flow(1).run().unwrap();
    let t_seq = t0.elapsed();
    let t1 = Instant::now();
    let par = small_flow(4).run().unwrap();
    let t_par = t1.elapsed();
    println!(
        "fig4_parallel: flow 1 thread {t_seq:?}, 4 threads {t_par:?} ({:.2}x), \
         estimate cache: {}",
        t_seq.as_secs_f64() / t_par.as_secs_f64().max(1e-9),
        par.cache_stats,
    );
    let identical = seq.candidates == par.candidates
        && seq.coarse == par.coarse
        && seq
            .designs
            .iter()
            .zip(&par.designs)
            .all(|(a, b)| a.point == b.point && a.code == b.code);
    println!(
        "fig4_parallel: 1-thread and 4-thread outputs {}",
        if identical {
            "are bit-identical"
        } else {
            "DIVERGED — determinism bug!"
        }
    );
}

criterion_group!(benches, bench_fig4_parallel);
criterion_main!(benches);
