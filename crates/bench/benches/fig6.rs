//! Criterion bench for Fig. 6: the full hardware-aware DNN search at
//! the 10 / 15 / 20 FPS targets.

use codesign_bench::experiments::{default_device, fig6, parallelism_from_env};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig6(c: &mut Criterion) {
    let dev = default_device();
    let parallelism = parallelism_from_env();
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("scd_search_all_targets", |b| {
        b.iter(|| fig6(&dev, parallelism).unwrap())
    });
    group.finish();

    let out = fig6(&dev, parallelism).unwrap();
    println!(
        "fig6: {} candidates across 3 targets (paper: 68); best IoUs: {:?}",
        out.explored.len(),
        out.best
            .iter()
            .map(|d| (d.target_fps, d.accuracy))
            .collect::<Vec<_>>()
    );
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
