//! Warm-vs-cold persistence bench: the same co-design flow run against
//! an empty estimate cache, against a cache preloaded from a persistent
//! [`EstimateStore`], and resumed from a [`FlowCheckpoint`] that
//! already holds every stage.
//!
//! The contract being measured is the tentpole of the persistence
//! layer: a warm start must be *bit-identical* to a cold run (same
//! Pareto designs, same generated C) while skipping the closed-form
//! estimate re-derivation for every design point priced before. Emits
//! `BENCH_persist.json` (cold wall clock, warm speedup + store hit
//! rate, resume speedup) via `codesign_bench::perf`.

use codesign_bench::{emit_bench_json, BenchRecord};
use codesign_core::checkpoint::FlowCheckpoint;
use codesign_core::flow::{CoDesignFlow, FlowConfig, FlowError, FlowOutput};
use codesign_core::observe::{CancelToken, FlowEvent};
use codesign_hls::cache::EstimateCache;
use codesign_hls::store::EstimateStore;
use codesign_sim::device::pynq_z1;
use criterion::{criterion_group, criterion_main, Criterion};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The full default flow (three FPS targets, default sweep) — enough
/// estimator traffic for the warm/cold gap to be measurable.
fn config() -> FlowConfig {
    FlowConfig::builder()
        .device(pynq_z1())
        .targets_fps([10.0, 15.0, 20.0])
        .build()
        .expect("valid bench config")
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("codesign_bench_persist");
    std::fs::create_dir_all(&dir).expect("create bench temp dir");
    dir.join(format!("{name}_{}.log", std::process::id()))
}

/// Runs the flow against `cache` and returns (output, wall clock).
fn run_with_cache(cache: &Arc<EstimateCache>) -> (FlowOutput, Duration) {
    let flow = CoDesignFlow::new(config()).with_estimate_cache(Arc::clone(cache));
    let t0 = Instant::now();
    let out = flow.run().expect("flow run");
    (out, t0.elapsed())
}

fn assert_bit_identical(cold: &FlowOutput, other: &FlowOutput, what: &str) {
    assert_eq!(cold.candidates, other.candidates, "{what}: candidates");
    assert_eq!(cold.designs.len(), other.designs.len(), "{what}: designs");
    for (a, b) in cold.designs.iter().zip(&other.designs) {
        assert_eq!(a.point, b.point, "{what}: design point");
        assert_eq!(a.report, b.report, "{what}: simulation report");
        assert_eq!(a.code, b.code, "{what}: generated C");
    }
}

fn bench_persist(_c: &mut Criterion) {
    let store_path = temp_path("store");
    let ckpt_path = temp_path("ckpt");
    let _ = std::fs::remove_file(&store_path);
    let _ = std::fs::remove_file(&ckpt_path);

    // Cold: empty cache, then spill everything the run priced.
    let cold_cache = Arc::new(EstimateCache::new());
    let (cold_out, cold_wall) = run_with_cache(&cold_cache);
    let mut store = EstimateStore::open(&store_path).expect("open store");
    let persisted = store.persist_from(&cold_cache).expect("persist estimates");
    drop(store);
    println!(
        "persist: cold flow {:.1} ms, {persisted} estimates persisted ({} bytes on disk)",
        cold_wall.as_secs_f64() * 1e3,
        std::fs::metadata(&store_path).map(|m| m.len()).unwrap_or(0),
    );

    // Warm: a "restarted process" preloads the store, then reruns the
    // identical flow. Every estimate it needs is already priced.
    let warm_cache = Arc::new(EstimateCache::new());
    let mut store = EstimateStore::open(&store_path).expect("reopen store");
    let loaded = store.load_into(&warm_cache);
    let (warm_out, warm_wall) = run_with_cache(&warm_cache);
    assert_bit_identical(&cold_out, &warm_out, "warm start");
    let stats = warm_cache.stats();
    let lookups = (stats.hits + stats.misses) as f64;
    let store_hit_rate = warm_cache.store_hits() as f64 / lookups.max(1.0);
    println!(
        "persist: warm flow {:.1} ms ({:.2}x), {loaded} estimates loaded, \
         store hit rate {:.1}%",
        warm_wall.as_secs_f64() * 1e3,
        cold_wall.as_secs_f64() / warm_wall.as_secs_f64().max(1e-9),
        store_hit_rate * 1e2,
    );
    assert!(
        store_hit_rate > 0.5,
        "warm start must serve most estimates from the store (got {:.1}%)",
        store_hit_rate * 1e2
    );

    // Resume: interrupt a checkpointed run after its last SCD cell,
    // then resume — all stages replay from disk, only finalization
    // recomputes.
    {
        let flow = CoDesignFlow::new(config());
        let ckpt = FlowCheckpoint::open(&ckpt_path, flow.config()).expect("open checkpoint");
        let token = CancelToken::new();
        let trip = token.clone();
        let observer = move |event: &FlowEvent| {
            if matches!(event, FlowEvent::ScdSearchFinished { done, total, .. } if done == total) {
                trip.cancel();
            }
        };
        let interrupted = flow.run_checkpointed(&ckpt, &observer, &token);
        assert!(matches!(interrupted, Err(FlowError::Cancelled)));
    }
    let flow = CoDesignFlow::new(config());
    let ckpt = FlowCheckpoint::open(&ckpt_path, flow.config()).expect("reopen checkpoint");
    let t0 = Instant::now();
    let resumed_out = flow
        .run_checkpointed(
            &ckpt,
            &codesign_core::observe::NullObserver,
            &CancelToken::new(),
        )
        .expect("resume");
    let resume_wall = t0.elapsed();
    assert_bit_identical(&cold_out, &resumed_out, "checkpoint resume");
    println!(
        "persist: resume {:.1} ms ({:.2}x over cold)",
        resume_wall.as_secs_f64() * 1e3,
        cold_wall.as_secs_f64() / resume_wall.as_secs_f64().max(1e-9),
    );

    let records = [
        BenchRecord::timing("cold_flow", cold_wall)
            .with_metric("estimates_persisted", persisted as f64),
        BenchRecord::speedup_over("warm_flow", warm_wall, cold_wall)
            .with_metric("estimates_loaded", loaded as f64)
            .with_metric("store_hits", warm_cache.store_hits() as f64)
            .with_metric("store_hit_rate", store_hit_rate),
        BenchRecord::speedup_over("resume_from_checkpoint", resume_wall, cold_wall),
    ];
    match emit_bench_json("persist", &records) {
        Ok(path) => println!("persist: wrote {}", path.display()),
        Err(err) => eprintln!("persist: could not write BENCH_persist.json: {err}"),
    }
    let _ = std::fs::remove_file(&store_path);
}

criterion_group!(benches, bench_persist);
criterion_main!(benches);
