//! Job-server load bench: 1 / 4 / 16 concurrent clients submitting
//! small co-design flows over HTTP and waiting for their results.
//!
//! Each client submits a batch of jobs back-to-back; a request's
//! latency is submit → result downloaded, so it includes queueing,
//! flow execution, and the event stream. Because every job shares the
//! process-wide estimate cache, later jobs run mostly cache-hot — the
//! multi-tenant scenario the server exists for. Emits
//! `BENCH_serve.json` (req/s plus p50/p99 latency per concurrency
//! level) via `codesign_bench::perf`.

use codesign_bench::{emit_bench_json, BenchRecord};
use codesign_serve::job::ServeConfig;
use codesign_serve::metrics::percentile;
use codesign_serve::{Client, Server};
use criterion::{criterion_group, criterion_main, Criterion};
use std::net::SocketAddr;
use std::thread;
use std::time::{Duration, Instant};

/// Concurrent client counts, per the acceptance checklist.
const CONCURRENCY: [usize; 3] = [1, 4, 16];

/// Jobs each client submits back-to-back.
const JOBS_PER_CLIENT: usize = 3;

/// A deliberately small flow so the bench measures the serving stack,
/// not minutes of search: one target, a narrow sweep, one worker per
/// job (concurrency comes from the job mix, not intra-job fan-out).
const REQUEST_BODY: &str =
    r#"{"targets_fps":[15.0],"candidates_per_bundle":2,"coarse_pf_sweep":[16],"parallelism":1}"#;

/// Runs one load wave and returns total wall clock plus per-request
/// latencies in milliseconds.
fn drive(addr: SocketAddr, concurrency: usize) -> (Duration, Vec<f64>) {
    let start = Instant::now();
    let handles: Vec<_> = (0..concurrency)
        .map(|_| {
            thread::spawn(move || {
                let client = Client::new(addr);
                let mut latencies = Vec::with_capacity(JOBS_PER_CLIENT);
                for _ in 0..JOBS_PER_CLIENT {
                    let t0 = Instant::now();
                    let job_id = client.submit_job(REQUEST_BODY).expect("submit");
                    let (status, body) = client.wait_result(job_id).expect("result");
                    assert_eq!(status, 200, "result fetch failed: {body}");
                    assert!(body.contains("\"pareto\""), "result body has no pareto set");
                    latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                }
                latencies
            })
        })
        .collect();
    let mut all = Vec::new();
    for handle in handles {
        all.extend(handle.join().expect("client thread"));
    }
    (start.elapsed(), all)
}

fn bench_serve(_c: &mut Criterion) {
    let mut server = Server::start(ServeConfig {
        max_queue: 64,
        executors: 8,
        ..ServeConfig::default()
    })
    .expect("start server");
    let addr = server.addr();

    // Warm the shared estimate cache once so the measured waves compare
    // concurrency levels, not cold-vs-hot cache states.
    let (_, warm) = drive(addr, 1);
    println!("serve: warmup request {:.1} ms", warm[0]);

    let mut records = Vec::new();
    for concurrency in CONCURRENCY {
        let (wall, latencies) = drive(addr, concurrency);
        let jobs = (concurrency * JOBS_PER_CLIENT) as f64;
        let req_per_s = jobs / wall.as_secs_f64().max(1e-9);
        let p50 = percentile(&latencies, 50.0).unwrap();
        let p99 = percentile(&latencies, 99.0).unwrap();
        println!(
            "serve: {concurrency:>2} clients x {JOBS_PER_CLIENT} jobs -> {:.1} req/s, \
             p50 {p50:.1} ms, p99 {p99:.1} ms ({:.0} ms total)",
            req_per_s,
            wall.as_secs_f64() * 1e3,
        );
        records.push(
            BenchRecord::timing(&format!("serve_c{concurrency}"), wall)
                .with_metric("jobs", jobs)
                .with_metric("req_per_s", req_per_s)
                .with_metric("p50_ms", p50)
                .with_metric("p99_ms", p99),
        );
    }

    let metrics = Client::new(addr).metrics().expect("metrics");
    println!(
        "serve: server-side counters after load: {}",
        metrics.encode()
    );
    server.shutdown();

    match emit_bench_json("serve", &records) {
        Ok(path) => println!("serve: wrote {}", path.display()),
        Err(err) => eprintln!("serve: could not write BENCH_serve.json: {err}"),
    }
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
