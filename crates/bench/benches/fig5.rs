//! Criterion bench for Fig. 5: fine-grained evaluation of the selected
//! Bundles across Relu / Relu4 / Relu8 variants.

use codesign_bench::experiments::{default_device, fig5};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig5(c: &mut Criterion) {
    let dev = default_device();
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("fine_grained_evaluation", |b| {
        b.iter(|| fig5(&dev).unwrap())
    });
    group.finish();

    let rows = fig5(&dev).unwrap();
    println!(
        "fig5: {} (bundle, activation, reps) evaluations",
        rows.len()
    );
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
