//! Quantized-inference microbench: float forward vs fake-quantized
//! forward vs the real int8 integer engine on a representative
//! candidate network.
//!
//! The fake-quantized path pays the full float inference *plus* a
//! grid-snapping pass after every layer — it exists to model accuracy,
//! not to be fast. The int8 engine executes the same network as `i8`
//! codes end-to-end through the exact `i8 x i8 -> i32` GEMM, so it must
//! beat the fake path while staying close to the float outputs; both
//! facts land in the committed `BENCH_quant.json` (throughput plus the
//! measured mean output deviations).

use codesign_bench::{emit_bench_json, BenchRecord};
use codesign_core::parallel::Parallelism;
use codesign_dnn::builder::DnnBuilder;
use codesign_dnn::bundle::{bundle_by_id, BundleId};
use codesign_dnn::quant::Quantization;
use codesign_dnn::space::DesignPoint;
use codesign_dnn::TensorShape;
use codesign_nn::{Engine, Network, QuantizedNetwork, Tensor};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;

fn candidate_net() -> Network {
    // The DNN1-3 block family (dw3x3 + conv1x1) at deployment-like
    // width on a half-resolution DAC-SDC frame.
    let b = bundle_by_id(BundleId(13)).unwrap();
    let mut p = DesignPoint::initial(b, 2);
    p.base_channels = 16;
    let dnn = DnnBuilder::new()
        .input(TensorShape::new(3, 24, 48))
        .build(&p)
        .unwrap();
    Network::from_dnn(&dnn, 42)
        .unwrap()
        .with_engine(Engine::Gemm(Parallelism::Fixed(1)))
}

fn ramp_image() -> Tensor {
    let data: Vec<f32> = (0..3 * 24 * 48)
        .map(|i| (i * 37 % 101) as f32 / 101.0)
        .collect();
    Tensor::from_vec(&[3, 24, 48], data)
}

fn bench_quant(c: &mut Criterion) {
    let net = candidate_net();
    let qnet = QuantizedNetwork::quantize(&net, Quantization::Int8);
    let img = ramp_image();

    let mut group = c.benchmark_group("quant");
    group.sample_size(10);
    group.bench_function("forward_f32", |b| b.iter(|| net.forward(&img)));
    group.bench_function("forward_fake_quant", |b| b.iter(|| qnet.forward(&img)));
    group.bench_function("forward_int8", |b| b.iter(|| qnet.forward_int8(&img)));
    group.finish();

    // Timed head-to-head for the committed JSON.
    const REPS: u32 = 30;
    let time = |f: &dyn Fn() -> Tensor| {
        let _warm = f();
        let t0 = Instant::now();
        let mut sink = 0.0f32;
        for _ in 0..REPS {
            sink += f().data()[0];
        }
        (t0.elapsed() / REPS, sink)
    };
    let (t_f32, _) = time(&|| net.forward(&img));
    let (t_fake, _) = time(&|| qnet.forward(&img));
    let (t_int8, _) = time(&|| qnet.forward_int8(&img));
    println!(
        "quant: f32 {t_f32:?}, fake-quant {t_fake:?}, int8 {t_int8:?} ({:.2}x over fake)",
        t_fake.as_secs_f64() / t_int8.as_secs_f64().max(1e-12)
    );

    // Accuracy context: mean output deviation from the float network,
    // for both quantized paths, over a handful of calibration images.
    let images: Vec<Tensor> = (0..4)
        .map(|i| {
            let data: Vec<f32> = (0..3 * 24 * 48)
                .map(|j| ((i * 13 + j * 41) % 97) as f32 / 97.0)
                .collect();
            Tensor::from_vec(&[3, 24, 48], data)
        })
        .collect();
    let dev_fake = qnet.deviation_from(&net, &images);
    let dev_int8 = qnet.int8_deviation_from(&net, &images);

    let records = vec![
        BenchRecord::timing("forward_f32", t_f32),
        BenchRecord::timing("forward_fake_quant", t_fake).with_metric("deviation", dev_fake as f64),
        BenchRecord::speedup_over("forward_int8", t_int8, t_fake)
            .with_metric("deviation", dev_int8 as f64),
    ];
    match emit_bench_json("quant", &records) {
        Ok(path) => println!("quant: wrote {}", path.display()),
        Err(e) => eprintln!("quant: could not write BENCH_quant.json: {e}"),
    }
}

criterion_group!(benches, bench_quant);
criterion_main!(benches);
