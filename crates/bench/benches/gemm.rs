//! GEMM kernel microbench: the packed 4×4 register-blocked `gemm_nt`
//! against the previous-generation unpacked dot kernel, on a square
//! matrix and on the conv-shaped operands proxy training actually
//! produces (patch-matrix rows × weight rows).
//!
//! Besides wall clock, every arm cross-checks the two kernels'
//! checksums: packing must be a pure layout change, so the packed
//! result has to be **bit-identical** to the old kernel's, element for
//! element — and the `*_simd` arms pin the same contract onto the
//! runtime-dispatched SSE2/AVX2 micro-kernels against the pinned scalar
//! tile. Emits `BENCH_gemm.json` via `codesign_bench::perf`.

use codesign_bench::{emit_bench_json, BenchRecord};
use codesign_nn::gemm::{gemm_nt, gemm_nt_at};
use codesign_nn::simd::{available_levels, detected_best, SimdLevel};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;

/// The pre-packing `gemm_nt` hot loop (PR 3): per output row, four
/// independent column accumulators streaming four separate `B` rows —
/// kept here verbatim as the parity baseline.
fn gemm_nt_unpacked(a: &[f32], b: &[f32], k: usize, n: usize, bias: Option<&[f32]>) -> Vec<f32> {
    let m = a.len() / k;
    let mut out = vec![0.0f32; m * n];
    for (r, out_row) in out.chunks_mut(n).enumerate() {
        let a_row = &a[r * k..(r + 1) * k];
        let mut j = 0;
        while j + 4 <= n {
            let b0 = &b[j * k..(j + 1) * k];
            let b1 = &b[(j + 1) * k..(j + 2) * k];
            let b2 = &b[(j + 2) * k..(j + 3) * k];
            let b3 = &b[(j + 3) * k..(j + 4) * k];
            let (mut s0, mut s1, mut s2, mut s3) = match bias {
                Some(bias) => (bias[j], bias[j + 1], bias[j + 2], bias[j + 3]),
                None => (0.0, 0.0, 0.0, 0.0),
            };
            for ((((&av, &v0), &v1), &v2), &v3) in a_row.iter().zip(b0).zip(b1).zip(b2).zip(b3) {
                s0 += av * v0;
                s1 += av * v1;
                s2 += av * v2;
                s3 += av * v3;
            }
            out_row[j] = s0;
            out_row[j + 1] = s1;
            out_row[j + 2] = s2;
            out_row[j + 3] = s3;
            j += 4;
        }
        while j < n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = bias.map_or(0.0, |bias| bias[j]);
            for (x, y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            out_row[j] = acc;
            j += 1;
        }
    }
    out
}

fn ramp(len: usize, scale: f32) -> Vec<f32> {
    (0..len)
        .map(|i| ((i * 31 % 113) as f32 - 56.0) * scale)
        .collect()
}

/// `(name, m, k, n)` for the measured shapes: one square case and two
/// conv-shaped cases (batch-of-8 plane rows × `c·k·k` patch columns ×
/// output channels, the exact geometry `conv_forward_gemm` emits).
const SHAPES: [(&str, usize, usize, usize); 3] = [
    ("square_192", 192, 192, 192),
    ("conv3x3_like", 8 * 16 * 32, 16 * 3 * 3, 32),
    ("conv1x1_like", 8 * 16 * 32, 64, 64),
];

fn checksum(v: &[f32]) -> u64 {
    v.iter()
        .fold(0u64, |h, &x| h.rotate_left(7) ^ u64::from(x.to_bits()))
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.sample_size(10);
    let mut records = Vec::new();
    for (name, m, k, n) in SHAPES {
        let a = ramp(m * k, 0.01);
        let b = ramp(n * k, 0.02);
        let bias = ramp(n, 0.1);

        // Bit-identity gate first: packing is a layout change only.
        let packed = gemm_nt(&a, &b, k, n, Some(&bias), 1);
        let unpacked = gemm_nt_unpacked(&a, &b, k, n, Some(&bias));
        assert_eq!(
            checksum(&packed),
            checksum(&unpacked),
            "{name}: packed kernel DIVERGED from the old kernel"
        );
        assert_eq!(packed, unpacked, "{name}: element-level divergence");

        group.bench_function(&format!("{name}/packed"), |bch| {
            bch.iter(|| gemm_nt(&a, &b, k, n, Some(&bias), 1))
        });
        group.bench_function(&format!("{name}/unpacked"), |bch| {
            bch.iter(|| gemm_nt_unpacked(&a, &b, k, n, Some(&bias)))
        });
        for level in available_levels() {
            group.bench_function(&format!("{name}/simd_{level}"), |bch| {
                bch.iter(|| gemm_nt_at(level, &a, &b, k, n, Some(&bias), 1))
            });
        }

        // Timed head-to-head for the committed JSON (mean of `REPS`
        // full kernels, warm caches).
        const REPS: u32 = 20;
        let time = |f: &dyn Fn() -> Vec<f32>| {
            let _warm = f();
            let t0 = Instant::now();
            let mut sink = 0u64;
            for _ in 0..REPS {
                sink ^= checksum(&f());
            }
            (t0.elapsed() / REPS, sink)
        };
        let (t_old, sink_old) = time(&|| gemm_nt_unpacked(&a, &b, k, n, Some(&bias)));
        let (t_new, sink_new) = time(&|| gemm_nt(&a, &b, k, n, Some(&bias), 1));
        assert_eq!(sink_old, sink_new, "{name}: checksum parity broke");
        println!(
            "gemm {name} (m={m} k={k} n={n}): unpacked {t_old:?} vs packed {t_new:?} ({:.2}x)",
            t_old.as_secs_f64() / t_new.as_secs_f64().max(1e-12)
        );
        records.push(BenchRecord::timing(&format!("{name}_unpacked"), t_old));
        records.push(BenchRecord::speedup_over(
            &format!("{name}_packed"),
            t_new,
            t_old,
        ));

        // SIMD ladder: the best runtime-detected level against the
        // pinned scalar tile. The checksum gate makes the dispatch
        // contract visible here too — every level, same bits.
        let best = detected_best();
        let (t_scalar, sink_scalar) =
            time(&|| gemm_nt_at(SimdLevel::Scalar, &a, &b, k, n, Some(&bias), 1));
        let (t_simd, sink_simd) = time(&|| gemm_nt_at(best, &a, &b, k, n, Some(&bias), 1));
        assert_eq!(
            sink_scalar, sink_simd,
            "{name}: SIMD level {best} DIVERGED from scalar"
        );
        println!(
            "gemm {name}: scalar {t_scalar:?} vs {best} {t_simd:?} ({:.2}x)",
            t_scalar.as_secs_f64() / t_simd.as_secs_f64().max(1e-12)
        );
        records.push(BenchRecord::timing(
            &format!("{name}_simd_scalar"),
            t_scalar,
        ));
        records.push(BenchRecord::speedup_over(
            &format!("{name}_simd_{best}"),
            t_simd,
            t_scalar,
        ));
    }
    group.finish();
    match emit_bench_json("gemm", &records) {
        Ok(path) => println!("gemm: wrote {}", path.display()),
        Err(e) => eprintln!("gemm: could not write BENCH_gemm.json: {e}"),
    }
}

criterion_group!(benches, bench_gemm);
criterion_main!(benches);
