//! Proxy-training bench: the naive per-image reference kernels vs the
//! batched im2col+GEMM compute engine at 1 and 4 workers.
//!
//! Two parts:
//!
//! * criterion-style timed samples on a shortened (4-epoch) proxy run,
//!   one per engine arm;
//! * a single head-to-head run of the **default** proxy config (the
//!   paper's 20-epoch protocol) printing the wall-clock speedup and
//!   checking the bit-identity contract across all arms.

use codesign_bench::{emit_bench_json, BenchRecord};
use codesign_core::accuracy::ProxyEvaluator;
use codesign_core::parallel::Parallelism;
use codesign_dnn::bundle::{bundle_by_id, BundleId};
use codesign_dnn::space::DesignPoint;
use codesign_nn::train::TrainConfig;
use codesign_nn::Engine;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;

/// GEMM worker counts compared against the naive reference kernels.
const THREAD_COUNTS: [usize; 2] = [1, 4];

/// The candidate the paper's examples train: a Bundle-13
/// (dw3x3 + conv1x1) network.
fn candidate() -> DesignPoint {
    let b = bundle_by_id(BundleId(13)).expect("bundle 13");
    DesignPoint::initial(b, 1)
}

fn evaluator(engine: Engine, epochs: usize) -> ProxyEvaluator {
    ProxyEvaluator {
        config: TrainConfig {
            epochs,
            ..TrainConfig::default()
        },
        engine,
        ..ProxyEvaluator::default()
    }
}

fn bench_proxy_train(c: &mut Criterion) {
    let point = candidate();
    let mut group = c.benchmark_group("proxy_train");
    // Real criterion requires at least 10 samples; the compat shim
    // accepts any value, so stay swap-compatible.
    group.sample_size(10);
    group.bench_function("naive", |b| {
        b.iter(|| evaluator(Engine::Reference, 4).evaluate(&point).unwrap())
    });
    for threads in THREAD_COUNTS {
        group.bench_function(&format!("gemm/threads{threads}"), |b| {
            b.iter(|| {
                evaluator(Engine::Gemm(Parallelism::Fixed(threads)), 4)
                    .evaluate(&point)
                    .unwrap()
            })
        });
    }
    group.finish();

    // Head-to-head on the default proxy config (20 epochs): wall clock
    // plus the determinism contract — every arm must return the same
    // bits.
    let epochs = TrainConfig::default().epochs;
    let t0 = Instant::now();
    let naive = evaluator(Engine::Reference, epochs)
        .evaluate(&point)
        .unwrap();
    let t_naive = t0.elapsed();
    let mut records = vec![BenchRecord::timing("train_naive_reference", t_naive)];
    for threads in THREAD_COUNTS {
        let t1 = Instant::now();
        let gemm = evaluator(Engine::Gemm(Parallelism::Fixed(threads)), epochs)
            .evaluate(&point)
            .unwrap();
        let t_gemm = t1.elapsed();
        println!(
            "proxy_train: naive {t_naive:?} vs gemm x{threads} {t_gemm:?} \
             ({:.2}x), results {}",
            t_naive.as_secs_f64() / t_gemm.as_secs_f64().max(1e-9),
            if naive.to_bits() == gemm.to_bits() {
                "are bit-identical"
            } else {
                "DIVERGED — determinism bug!"
            }
        );
        records.push(BenchRecord::speedup_over(
            &format!("train_gemm_{threads}_workers"),
            t_gemm,
            t_naive,
        ));
    }
    match emit_bench_json("proxy_train", &records) {
        Ok(path) => println!("proxy_train: wrote {}", path.display()),
        Err(e) => eprintln!("proxy_train: could not write BENCH_proxy_train.json: {e}"),
    }
}

criterion_group!(benches, bench_proxy_train);
criterion_main!(benches);
