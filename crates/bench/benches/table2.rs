//! Criterion bench for Table 2: evaluates DNN1-3 end to end (builder ->
//! Tile-Arch simulation -> power model) against the published rows.

use codesign_bench::experiments::{default_device, table2};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_table2(c: &mut Criterion) {
    let dev = default_device();
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_function("dnn1_3_full_evaluation", |b| {
        b.iter(|| table2(&dev).unwrap())
    });
    group.finish();

    let (ours, _) = table2(&dev).unwrap();
    for r in ours.iter().step_by(2) {
        println!(
            "table2: {} IoU {:.3}, {:.1} ms @100MHz, {:.2} W, {:.3} J/pic",
            r.name, r.iou, r.latency_ms, r.power_w, r.j_per_pic
        );
    }
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
