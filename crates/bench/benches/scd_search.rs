//! SCD estimator-probe bench: the incremental [`EstimatePlan`] against
//! the full rebuild-per-probe `estimate_point` baseline, plus the
//! end-to-end `scd_search` and `exp_fig4`-style flow wall clock at 1
//! and 4 workers.
//!
//! Three parts:
//!
//! * criterion-style timed samples over a fixed SCD-shaped probe walk
//!   (three unit-move probes, then one committed move — exactly the
//!   query pattern of Algorithm 1), one per engine arm;
//! * an uncached head-to-head of the same walk reporting probes/sec and
//!   the incremental-vs-rebuild speedup (acceptance target: ≥ 3x);
//! * `BENCH_scd.json` (see `codesign_bench::perf`) recording the walk
//!   arms, the `scd_search` wall clock, and the small-flow wall clock
//!   at parallelism 1 and 4, so the perf trajectory is machine-readable
//!   from this PR onward.

use codesign_bench::experiments::default_device;
use codesign_bench::{emit_bench_json, BenchRecord};
use codesign_core::accuracy::AccuracyModel;
use codesign_core::flow::{CoDesignFlow, FlowConfig};
use codesign_core::parallel::Parallelism;
use codesign_core::search::{scd_search, ScdConfig};
use codesign_dnn::bundle::{bundle_by_id, Bundle, BundleId};
use codesign_dnn::space::DesignPoint;
use codesign_hls::calibrate::calibrate_bundle_with;
use codesign_hls::incremental::{EstimatePlan, MoveCoord};
use codesign_hls::model::HlsEstimator;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::{Duration, Instant};

/// The SCD-shaped probe walk: at each step price all three unit moves
/// from the current point, then commit one of them (round-robin over
/// the coordinates, alternating direction to stay inside the domain).
/// Deterministic so both arms price the identical point sequence.
const WALK_STEPS: usize = 40;

fn walk_bundle() -> Bundle {
    bundle_by_id(BundleId(13)).expect("bundle 13")
}

fn walk_estimator() -> HlsEstimator {
    let bundle = walk_bundle();
    let params =
        calibrate_bundle_with(&bundle, &default_device(), &[1, 2, 3, 4], 96).expect("calibration");
    HlsEstimator::new(params, default_device())
}

fn start_point() -> DesignPoint {
    let mut point = DesignPoint::initial(walk_bundle(), 3);
    point.parallel_factor = 64;
    point
}

fn walk_moves(step: usize) -> [(MoveCoord, isize); 3] {
    let dir = if step.is_multiple_of(2) { 1 } else { -1 };
    [
        (MoveCoord::Replications, dir),
        (MoveCoord::Expansion, dir),
        (MoveCoord::Downsampling, -dir),
    ]
}

/// PF rung probed at walk step `step` — the `choose_max_parallel_factor`
/// part of the SCD probe mix (the ladder binary search prices the same
/// structure at many parallel factors).
fn walk_pf(step: usize) -> usize {
    [16, 48, 100, 160, 216][step % 5]
}

/// The walk priced by full rebuilds (the pre-incremental behavior of
/// `scd_search`). Returns a latency checksum so the arms can be
/// compared for bit-identity.
fn run_walk_full_rebuild(estimator: &HlsEstimator) -> (u64, usize) {
    let mut point = start_point();
    let mut checksum = 0u64;
    let mut probes = 0usize;
    let mut tally = |est: Result<codesign_hls::model::Estimate, _>, probes: &mut usize| {
        if let Ok(est) = est {
            checksum = checksum.wrapping_mul(31).wrapping_add(est.latency_cycles);
        }
        *probes += 1;
    };
    for step in 0..WALK_STEPS {
        let moves = walk_moves(step);
        for &(coord, dir) in &moves {
            let target = coord.applied(&point, dir);
            tally(estimator.estimate_point(&target), &mut probes);
        }
        let mut pf_probe = point.clone();
        pf_probe.parallel_factor = walk_pf(step);
        tally(estimator.estimate_point(&pf_probe), &mut probes);
        let (coord, dir) = (moves[step % 3].0, moves[step % 3].1);
        point = coord.applied(&point, dir);
    }
    (checksum, probes)
}

/// The same walk priced through the incremental plan.
fn run_walk_incremental(estimator: &HlsEstimator) -> (u64, usize) {
    let mut point = start_point();
    let mut plan = EstimatePlan::new(estimator, &point).expect("initial point elaborates");
    let mut checksum = 0u64;
    let mut probes = 0usize;
    let mut tally = |est: Result<codesign_hls::model::Estimate, _>, probes: &mut usize| {
        if let Ok(est) = est {
            checksum = checksum.wrapping_mul(31).wrapping_add(est.latency_cycles);
        }
        *probes += 1;
    };
    for step in 0..WALK_STEPS {
        let moves = walk_moves(step);
        for &(coord, dir) in &moves {
            let target = coord.applied(&point, dir);
            tally(plan.probe(&target), &mut probes);
        }
        let mut pf_probe = point.clone();
        pf_probe.parallel_factor = walk_pf(step);
        tally(plan.probe(&pf_probe), &mut probes);
        let (coord, dir) = (moves[step % 3].0, moves[step % 3].1);
        point = coord.applied(&point, dir);
        plan.commit(&point).expect("walk stays valid");
    }
    (checksum, probes)
}

fn small_flow(threads: usize) -> CoDesignFlow {
    CoDesignFlow::new(FlowConfig {
        targets_fps: vec![15.0],
        candidates_per_bundle: 3,
        coarse_pf_sweep: vec![16],
        parallelism: Parallelism::Fixed(threads),
        ..FlowConfig::for_device(default_device())
    })
}

fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

fn bench_scd_search(c: &mut Criterion) {
    let estimator = walk_estimator();
    let mut group = c.benchmark_group("scd_search");
    group.sample_size(10);
    group.bench_function("probe/full_rebuild", |b| {
        b.iter(|| run_walk_full_rebuild(&estimator))
    });
    group.bench_function("probe/incremental", |b| {
        b.iter(|| run_walk_incremental(&estimator))
    });
    let scd_cfg = ScdConfig {
        latency_target_ms: 60.0,
        tolerance_ms: 5.0,
        candidates: 8,
        max_iterations: 200,
        ..ScdConfig::default()
    };
    let model = AccuracyModel::paper_calibrated();
    let bundle = walk_bundle();
    group.bench_function("search/end_to_end", |b| {
        b.iter(|| scd_search(&bundle, &estimator, &model, &scd_cfg))
    });
    group.finish();

    // Head-to-head: identical probe sequences, uncached, repeated until
    // the slower arm accumulates a stable wall clock.
    const REPS: usize = 20;
    let ((full_sum, full_probes), t_full) = time(|| {
        let mut acc = (0u64, 0usize);
        for _ in 0..REPS {
            acc = run_walk_full_rebuild(&estimator);
        }
        acc
    });
    let ((inc_sum, inc_probes), t_inc) = time(|| {
        let mut acc = (0u64, 0usize);
        for _ in 0..REPS {
            acc = run_walk_incremental(&estimator);
        }
        acc
    });
    assert_eq!(
        (full_sum, full_probes),
        (inc_sum, inc_probes),
        "incremental walk DIVERGED from the full rebuild — determinism bug!"
    );
    let total_probes = (full_probes * REPS) as f64;
    let speedup = t_full.as_secs_f64() / t_inc.as_secs_f64().max(1e-12);
    println!(
        "scd_search: {total_probes} probes — full rebuild {t_full:?} \
         ({:.0} probes/s), incremental {t_inc:?} ({:.0} probes/s), {speedup:.2}x \
         (target >= 3x), checksums identical",
        total_probes / t_full.as_secs_f64(),
        total_probes / t_inc.as_secs_f64(),
    );

    let (scd_found, t_scd) = time(|| scd_search(&bundle, &estimator, &model, &scd_cfg));
    println!(
        "scd_search: end-to-end search found {} candidates in {t_scd:?}",
        scd_found.len()
    );

    // Flow wall clock at 1 and 4 workers: the exp_fig4-scale trajectory
    // numbers (outputs stay bit-identical across worker counts; the
    // determinism suite pins that).
    let (_, t_flow1) = time(|| small_flow(1).run().unwrap());
    let (flow4, t_flow4) = time(|| small_flow(4).run().unwrap());
    println!(
        "scd_search: small flow 1 worker {t_flow1:?}, 4 workers {t_flow4:?}, \
         estimate cache: {}",
        flow4.cache_stats
    );

    let records = [
        BenchRecord::timing("probe_walk_full_rebuild", t_full),
        BenchRecord::speedup_over("probe_walk_incremental", t_inc, t_full),
        BenchRecord::timing("scd_search_end_to_end", t_scd),
        BenchRecord::timing("flow_small_1_worker", t_flow1),
        BenchRecord::timing("flow_small_4_workers", t_flow4),
    ];
    match emit_bench_json("scd", &records) {
        Ok(path) => println!("scd_search: wrote {}", path.display()),
        Err(e) => eprintln!("scd_search: could not write BENCH_scd.json: {e}"),
    }
}

criterion_group!(benches, bench_scd_search);
criterion_main!(benches);
