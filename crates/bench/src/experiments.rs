//! The experiment implementations.
//!
//! Every function regenerates one paper artifact and returns structured
//! rows; the `exp_*` binaries pretty-print them next to the paper's
//! reported values, and `EXPERIMENTS.md` records the comparison.

use codesign_baselines::published::{dac_sdc_2018_results, PublishedResult};
use codesign_baselines::topdown::{TopDownFlow, TopDownResult};
use codesign_core::accuracy::AccuracyModel;
use codesign_core::evaluate::{
    coarse_evaluate_parallel, fine_evaluate, select_bundles, BundleEvaluation, EvalMethod,
    FineEvaluation,
};
use codesign_core::flow::{CoDesignFlow, FlowConfig};
use codesign_core::parallel::Parallelism;
use codesign_dnn::builder::DnnBuilder;
use codesign_dnn::bundle::{enumerate_bundles, BundleId};
use codesign_sim::device::{pynq_z1, FpgaDevice};
use codesign_sim::error::SimError;
use codesign_sim::pipeline::{simulate, AccelConfig};
use codesign_sim::power::PowerModel;
use serde::{Deserialize, Serialize};

/// Images in the official DAC-SDC evaluation set.
pub const EVAL_IMAGES: u64 = 50_000;

/// Environment variable the `exp_*` binaries and benches read for the
/// worker-thread knob: a positive integer pins the count, anything else
/// means one worker per core.
pub const PARALLELISM_ENV: &str = "CODESIGN_PARALLELISM";

/// The [`Parallelism`] knob from [`PARALLELISM_ENV`].
pub fn parallelism_from_env() -> Parallelism {
    Parallelism::from_env(PARALLELISM_ENV)
}

/// Figure 4: coarse-grained Bundle evaluation.
///
/// Returns the bubble-chart data (one record per Bundle per parallel
/// factor) and the selected Pareto Bundle set, for the given DNN
/// construction method. The evaluation fans out one work item per
/// Bundle; results are byte-identical for any `parallelism`.
///
/// # Errors
///
/// Propagates simulator failures.
pub fn fig4(
    method: EvalMethod,
    device: &FpgaDevice,
    parallelism: Parallelism,
) -> Result<(Vec<BundleEvaluation>, Vec<BundleId>), SimError> {
    let model = AccuracyModel::paper_calibrated();
    let evals = coarse_evaluate_parallel(
        &enumerate_bundles(),
        device,
        &[4, 8, 16],
        method,
        &model,
        100.0,
        parallelism.threads(),
    )?;
    let at_pf16: Vec<BundleEvaluation> = evals
        .iter()
        .filter(|e| e.parallel_factor == 16)
        .cloned()
        .collect();
    let selected = select_bundles(&at_pf16);
    Ok((evals, selected))
}

/// Figure 5: fine-grained evaluation of the selected Bundles with all
/// activation variants over a replication sweep.
///
/// # Errors
///
/// Propagates simulator failures.
pub fn fig5(device: &FpgaDevice) -> Result<Vec<FineEvaluation>, SimError> {
    let model = AccuracyModel::paper_calibrated();
    let bundles = enumerate_bundles();
    let mut rows = Vec::new();
    for id in [1usize, 3, 13, 15, 17] {
        rows.extend(fine_evaluate(
            &bundles[id - 1],
            device,
            &model,
            1..=4,
            16,
            100.0,
        )?);
    }
    Ok(rows)
}

/// One explored design of Fig. 6.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExploredDesign {
    /// FPS target band the design was searched for.
    pub target_fps: f64,
    /// Bundle the design is built from.
    pub bundle: usize,
    /// Replication count.
    pub replications: usize,
    /// Widest channel count.
    pub max_channels: usize,
    /// Activation variant.
    pub activation: String,
    /// Estimated FPS at 100 MHz.
    pub fps: f64,
    /// Estimated accuracy (IoU).
    pub accuracy: f64,
}

/// Figure 6 output: all explored candidates plus the best design per
/// target.
#[derive(Debug, Clone)]
pub struct Fig6Output {
    /// Ids of the Bundles selected by the coarse evaluation.
    pub selected_bundles: Vec<usize>,
    /// Every candidate in some target band.
    pub explored: Vec<ExploredDesign>,
    /// `(target fps, best candidate)` per target.
    pub best: Vec<ExploredDesign>,
}

/// Figure 6: hardware-aware DNN search targeting 10 / 15 / 20 FPS at
/// 100 MHz on the PYNQ-Z1.
///
/// # Errors
///
/// Propagates flow failures.
pub fn fig6(
    device: &FpgaDevice,
    parallelism: Parallelism,
) -> Result<Fig6Output, codesign_core::flow::FlowError> {
    let config = FlowConfig::builder()
        .device(device.clone())
        .candidates_per_bundle(5)
        .coarse_pf_sweep([16])
        .parallelism(parallelism)
        .build()?;
    let flow = CoDesignFlow::new(config);
    let out = flow.run()?;
    let to_row = |target: f64, c: &codesign_core::search::Candidate| ExploredDesign {
        target_fps: target,
        bundle: c.point.bundle.id().0,
        replications: c.point.n_replications,
        max_channels: c.point.realized_max_channels(),
        activation: c.point.activation.to_string(),
        fps: 1000.0 / c.latency_ms,
        accuracy: c.accuracy,
    };
    let explored: Vec<ExploredDesign> = out.candidates.iter().map(|(t, c)| to_row(*t, c)).collect();
    let best: Vec<ExploredDesign> = flow
        .config()
        .targets_fps
        .iter()
        .filter_map(|&t| out.best_candidate_for(t).map(|c| to_row(t, c)))
        .collect();
    Ok(Fig6Output {
        selected_bundles: out.selected_bundle_ids(),
        explored,
        best,
    })
}

/// One of our rows in Table 2 (one design at one clock).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OursRow {
    /// Design name (DNN1-3).
    pub name: String,
    /// Estimated accuracy (IoU) on the detection task.
    pub iou: f64,
    /// Clock in MHz.
    pub clock_mhz: f64,
    /// Single-frame latency in milliseconds.
    pub latency_ms: f64,
    /// Throughput in frames per second.
    pub fps: f64,
    /// Board power in watts.
    pub power_w: f64,
    /// Energy over the 50 K-image set in kilojoules.
    pub energy_kj: f64,
    /// Energy per image in joules.
    pub j_per_pic: f64,
    /// LUT utilization in percent.
    pub lut_pct: f64,
    /// DSP utilization in percent.
    pub dsp_pct: f64,
    /// BRAM utilization in percent.
    pub bram_pct: f64,
    /// FF utilization in percent.
    pub ff_pct: f64,
}

/// Table 2: our DNN1-3 at 100 and 150 MHz, next to the published
/// FPGA / GPU leaderboard rows.
///
/// # Errors
///
/// Propagates simulator failures.
pub fn table2(device: &FpgaDevice) -> Result<(Vec<OursRow>, Vec<PublishedResult>), SimError> {
    let model = AccuracyModel::paper_calibrated();
    let power = PowerModel::pynq_z1();
    let mut ours = Vec::new();
    for (name, point) in [
        ("DNN1", crate::designs::dnn1_point()),
        ("DNN2", crate::designs::dnn2_point()),
        ("DNN3", crate::designs::dnn3_point()),
    ] {
        let dnn = DnnBuilder::new()
            .build(&point)
            .map_err(|e| SimError::InvalidConfig {
                reason: format!("{name} failed to elaborate: {e}"),
            })?;
        let report = simulate(&dnn, &AccelConfig::for_point(&point), device)?;
        device.check_fit(&report.resources)?;
        let iou = model.estimate(&point, &dnn);
        let util = report.utilization(&device.budget());
        for clock in [100.0, 150.0] {
            let latency_ms = report.latency_ms(clock);
            let watts = power.report_power(&report, &device.budget(), clock);
            ours.push(OursRow {
                name: name.to_string(),
                iou,
                clock_mhz: clock,
                latency_ms,
                fps: 1000.0 / latency_ms,
                power_w: watts,
                energy_kj: power.energy_joules(watts, latency_ms, EVAL_IMAGES) / 1000.0,
                j_per_pic: power.joules_per_image(watts, latency_ms),
                lut_pct: util.lut * 100.0,
                dsp_pct: util.dsp * 100.0,
                bram_pct: util.bram * 100.0,
                ff_pct: util.ff * 100.0,
            });
        }
    }
    Ok((ours, dac_sdc_2018_results()))
}

/// Ablation result: co-design vs. the top-down flow at one latency
/// target.
#[derive(Debug, Clone)]
pub struct AblationOutcome {
    /// Latency target in milliseconds at 100 MHz.
    pub latency_target_ms: f64,
    /// Best co-design accuracy within the target.
    pub codesign_iou: f64,
    /// Co-design latency in milliseconds.
    pub codesign_latency_ms: f64,
    /// Top-down (compress-then-map) result.
    pub topdown: TopDownResult,
}

/// Sec. 6 ablation: bottom-up co-design against the executable top-down
/// baseline, at the paper's FPGA-category operating point.
///
/// # Errors
///
/// Propagates flow and simulator failures.
pub fn ablation(device: &FpgaDevice) -> Result<AblationOutcome, SimError> {
    let latency_target_ms = 85.0; // the FPGA 1st place's band (84.6 ms)

    // Co-design arm: best design meeting the target on this substrate
    // is DNN1 (the accuracy-oriented design is well inside 85 ms here).
    let point = crate::designs::dnn1_point();
    let dnn = DnnBuilder::new()
        .build(&point)
        .map_err(|e| SimError::InvalidConfig {
            reason: format!("dnn1 failed to elaborate: {e}"),
        })?;
    let report = simulate(&dnn, &AccelConfig::for_point(&point), device)?;
    let codesign_iou = AccuracyModel::paper_calibrated().estimate(&point, &dnn);

    // Top-down arm on the identical device and target.
    let topdown = TopDownFlow::new(device.clone()).run(100.0, latency_target_ms)?;

    Ok(AblationOutcome {
        latency_target_ms,
        codesign_iou,
        codesign_latency_ms: report.latency_ms(100.0),
        topdown,
    })
}

/// Default device for every experiment.
pub fn default_device() -> FpgaDevice {
    pynq_z1()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_selects_paper_bundles_both_methods() {
        let dev = default_device();
        let (_, sel1) = fig4(EvalMethod::FixedHeadTail, &dev, Parallelism::Auto).unwrap();
        let (_, sel2) = fig4(EvalMethod::Replicated { n: 3 }, &dev, Parallelism::Auto).unwrap();
        let expected: Vec<BundleId> = [1, 3, 13, 15, 17].map(BundleId).to_vec();
        assert_eq!(sel1, expected);
        assert_eq!(sel2, expected);
    }

    #[test]
    fn fig5_shows_bundle_trade_offs() {
        let rows = fig5(&default_device()).unwrap();
        // 5 bundles x 4 replication counts x 3 activations, minus
        // entries that cannot elaborate.
        assert!(rows.len() >= 50);
        // Bundle 1 and 3 are accuracy-favorable but slower; Bundle 13 is
        // latency-favorable (paper Fig. 5's observation). Compare at
        // equal replication count and activation.
        let at = |id: usize| {
            rows.iter()
                .find(|r| {
                    r.bundle_id == BundleId(id)
                        && r.n_replications == 3
                        && r.activation == codesign_dnn::quant::Activation::Relu
                })
                .unwrap()
        };
        assert!(at(3).accuracy > at(13).accuracy);
        assert!(at(13).latency_ms < at(1).latency_ms);
    }

    #[test]
    fn table2_reproduces_paper_shape() {
        let (ours, published) = table2(&default_device()).unwrap();
        assert_eq!(ours.len(), 6); // 3 designs x 2 clocks

        let dnn1 = &ours[0];
        let dnn2 = &ours[2];
        let dnn3 = &ours[4];
        // Accuracy ordering and approximate values.
        assert!(dnn1.iou > dnn2.iou && dnn2.iou > dnn3.iou);
        assert!((dnn1.iou - 0.686).abs() < 0.02, "DNN1 IoU {}", dnn1.iou);
        assert!((dnn2.iou - 0.612).abs() < 0.02, "DNN2 IoU {}", dnn2.iou);
        assert!((dnn3.iou - 0.593).abs() < 0.02, "DNN3 IoU {}", dnn3.iou);
        // Latency ordering: DNN1 slowest, DNN3 fastest.
        assert!(dnn1.latency_ms > dnn2.latency_ms);
        assert!(dnn2.latency_ms > dnn3.latency_ms);

        // Headline claims against the FPGA 1st place.
        let ssd = &published[0];
        assert!(dnn1.iou > ssd.iou + 0.05, "IoU win over SSD too small");
        assert!(dnn1.power_w < ssd.power_w * 0.7, "power win missing");
        assert!(
            ssd.j_per_pic / dnn1.j_per_pic > 2.0,
            "energy-efficiency win below 2x: {} vs {}",
            dnn1.j_per_pic,
            ssd.j_per_pic
        );
        // GPU rows keep an accuracy edge but lose energy by >= 3x.
        let gpu1 = &published[3];
        assert!(gpu1.iou > dnn1.iou);
        assert!(gpu1.j_per_pic / dnn1.j_per_pic > 3.0);
    }

    #[test]
    fn ablation_codesign_beats_topdown() {
        let out = ablation(&default_device()).unwrap();
        assert!(
            out.codesign_iou > out.topdown.iou + 0.02,
            "co-design {} vs top-down {}",
            out.codesign_iou,
            out.topdown.iou
        );
        assert!(out.codesign_latency_ms <= out.latency_target_ms);
        assert!(out.topdown.latency_ms <= out.latency_target_ms);
    }
}

/// Outcome of the SCD-vs-random-search ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScdAblationOutcome {
    /// Iteration budget given to both searchers.
    pub budget: usize,
    /// In-window candidates the SCD unit found.
    pub scd_found: usize,
    /// Best accuracy among SCD candidates.
    pub scd_best_iou: f64,
    /// In-window candidates uniform random sampling found.
    pub random_found: usize,
    /// Best accuracy among random candidates (0 when none).
    pub random_best_iou: f64,
}

/// Design-choice ablation: what does the SCD unit (Algorithm 1) buy
/// over uniform random sampling of the same co-design space, under an
/// identical evaluation budget?
///
/// # Errors
///
/// Propagates simulator failures from calibration.
pub fn scd_ablation(device: &FpgaDevice) -> Result<ScdAblationOutcome, SimError> {
    use codesign_core::search::{random_search, scd_search_with_activation, ScdConfig};
    use codesign_dnn::quant::Activation;
    use codesign_hls::calibrate::calibrate_bundle_with;
    use codesign_hls::model::HlsEstimator;

    let bundle = enumerate_bundles()[12].clone(); // Bundle 13
    let params = calibrate_bundle_with(&bundle, device, &[1, 2, 3, 4], 96)?;
    let estimator = HlsEstimator::new(params, device.clone());
    let model = AccuracyModel::paper_calibrated();
    let cfg = ScdConfig {
        latency_target_ms: 60.0,
        tolerance_ms: 4.0,
        clock_mhz: 100.0,
        candidates: 10,
        max_iterations: 150,
        seed: 77,
    };
    let scd = scd_search_with_activation(&bundle, &estimator, &model, &cfg, Activation::Relu4);
    let (random, _) = random_search(&bundle, &estimator, &model, &cfg, Activation::Relu4);
    let best = |v: &[codesign_core::search::Candidate]| {
        v.iter().map(|c| c.accuracy).fold(0.0f64, f64::max)
    };
    Ok(ScdAblationOutcome {
        budget: cfg.max_iterations,
        scd_found: scd.len(),
        scd_best_iou: best(&scd),
        random_found: random.len(),
        random_best_iou: best(&random),
    })
}

/// One row of the device-portability study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PortabilityRow {
    /// Device name.
    pub device: String,
    /// FPS target of the search.
    pub target_fps: f64,
    /// Best accuracy found within the band.
    pub best_iou: f64,
    /// Simulated FPS of the winning design at 100 MHz.
    pub fps: f64,
    /// DSP utilization of the winner in percent.
    pub dsp_pct: f64,
}

/// Extension experiment: the methodology ported up the device ladder
/// (Ultra96, then ZCU104). The paper positions the approach as
/// device-portable; a bigger resource budget should buy more accuracy
/// at the same FPS target.
///
/// # Errors
///
/// Propagates flow failures.
pub fn portability(
    parallelism: Parallelism,
) -> Result<Vec<PortabilityRow>, codesign_core::flow::FlowError> {
    use codesign_sim::device::{ultra96, zcu104};
    let mut rows = Vec::new();
    for device in [pynq_z1(), ultra96(), zcu104()] {
        let config = FlowConfig::builder()
            .device(device.clone())
            .targets_fps([15.0])
            .candidates_per_bundle(2)
            .coarse_pf_sweep([16])
            .parallelism(parallelism)
            .build()?;
        let out = CoDesignFlow::new(config).run()?;
        if let Some(d) = out.design_for(15.0) {
            rows.push(PortabilityRow {
                device: device.name.clone(),
                target_fps: d.target_fps,
                best_iou: d.accuracy,
                fps: d.fps,
                dsp_pct: d.report.utilization(&device.budget()).dsp * 100.0,
            });
        }
    }
    Ok(rows)
}
