//! The three published designs of the paper (Fig. 6 / Table 2).
//!
//! Fig. 6 describes the final designs found by the co-design flow:
//!
//! * **DNN1** — Bundle 13, 5 Bundle replications, maximum 512 channels,
//!   8-bit feature maps (`Relu4`);
//! * **DNN2** — Bundle 13, 4 replications, maximum 384 channels,
//!   16-bit feature maps (`Relu`);
//! * **DNN3** — Bundle 13, 4 replications, maximum 384 channels,
//!   8-bit feature maps (`Relu4`).
//!
//! The exact down-sampling / expansion schedules and parallel factors
//! below were fixed the same way the paper fixed theirs: they are the
//! best-accuracy candidates that fit the PYNQ-Z1 for the respective
//! latency band on *this* substrate.

use codesign_dnn::bundle::{bundle_by_id, BundleId};
use codesign_dnn::quant::Activation;
use codesign_dnn::space::DesignPoint;

fn bundle13() -> codesign_dnn::bundle::Bundle {
    bundle_by_id(BundleId(13)).expect("bundle 13 exists")
}

/// DNN1: the accuracy-oriented design (paper: 68.6% IoU, 12.5 FPS at
/// 100 MHz).
pub fn dnn1_point() -> DesignPoint {
    let mut p = DesignPoint::initial(bundle13(), 5);
    p.base_channels = 48;
    p.max_channels = 512;
    p.downsample = vec![true, true, true, false, false];
    p.activation = Activation::Relu4;
    p.parallel_factor = 176;
    p
}

/// DNN2: the balanced design with 16-bit feature maps (paper: 61.2%
/// IoU, 16.0 FPS at 100 MHz).
pub fn dnn2_point() -> DesignPoint {
    let mut p = DesignPoint::initial(bundle13(), 4);
    p.base_channels = 32;
    p.max_channels = 384;
    p.downsample = vec![true, true, true, false];
    p.activation = Activation::Relu;
    p.parallel_factor = 96;
    p
}

/// DNN3: the throughput-oriented design — DNN2's structure with 8-bit
/// feature maps (paper: 59.3% IoU, 20.9 FPS at 100 MHz).
pub fn dnn3_point() -> DesignPoint {
    let mut p = dnn2_point();
    p.activation = Activation::Relu4;
    p.parallel_factor = 192;
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use codesign_dnn::builder::DnnBuilder;
    use codesign_sim::device::pynq_z1;
    use codesign_sim::pipeline::{synthesize, AccelConfig};

    #[test]
    fn all_three_designs_fit_the_pynq() {
        for (name, p) in [
            ("DNN1", dnn1_point()),
            ("DNN2", dnn2_point()),
            ("DNN3", dnn3_point()),
        ] {
            p.validate().unwrap();
            let dnn = DnnBuilder::new().build(&p).unwrap();
            synthesize(&dnn, &AccelConfig::for_point(&p), &pynq_z1())
                .unwrap_or_else(|e| panic!("{name} does not fit: {e}"));
        }
    }

    #[test]
    fn structures_match_the_paper_description() {
        assert_eq!(dnn1_point().n_replications, 5);
        assert_eq!(dnn1_point().max_channels, 512);
        assert_eq!(dnn1_point().activation, Activation::Relu4);
        assert_eq!(dnn2_point().n_replications, 4);
        assert_eq!(dnn2_point().max_channels, 384);
        assert_eq!(dnn2_point().activation, Activation::Relu);
        assert_eq!(dnn3_point().activation, Activation::Relu4);
        // DNN2 and DNN3 share one structure.
        assert_eq!(dnn2_point().downsample, dnn3_point().downsample);
        assert_eq!(dnn2_point().expansion, dnn3_point().expansion);
    }
}
