//! Machine-readable perf-trajectory artifacts.
//!
//! Criterion output is for humans; the perf *trajectory* — how the hot
//! paths evolve PR over PR — needs a stable, machine-readable record.
//! Benches call [`emit_bench_json`] with one [`BenchRecord`] per
//! measured arm and a `BENCH_<name>.json` file appears at the
//! workspace root (or in `$BENCH_JSON_DIR` when set), ready to be
//! committed or scraped by CI.
//!
//! The JSON is written by hand because the workspace's offline `serde`
//! shim has no `serde_json`; the format is deliberately flat:
//!
//! ```json
//! {
//!   "bench": "scd",
//!   "records": [
//!     { "name": "probe_incremental", "wall_ms": 12.5, "speedup": 4.2 }
//!   ]
//! }
//! ```

use std::io::Write as _;
use std::path::PathBuf;
use std::time::Duration;

/// One measured arm of a bench: a name, its wall clock, and optionally
/// the speedup over the arm it is being compared against.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Arm name (`snake_case`, stable across PRs — it is the trajectory
    /// key).
    pub name: String,
    /// Wall-clock milliseconds.
    pub wall_ms: f64,
    /// Speedup over the baseline arm, when the record is a comparison.
    pub speedup: Option<f64>,
    /// Extra named scalar metrics (throughput, percentiles, …),
    /// serialized as additional keys in emission order.
    pub extras: Vec<(String, f64)>,
}

impl BenchRecord {
    /// A plain timing record.
    pub fn timing(name: &str, wall: Duration) -> Self {
        Self {
            name: name.to_string(),
            wall_ms: wall.as_secs_f64() * 1e3,
            speedup: None,
            extras: Vec::new(),
        }
    }

    /// A timing record with a speedup over `baseline`.
    pub fn speedup_over(name: &str, wall: Duration, baseline: Duration) -> Self {
        Self {
            name: name.to_string(),
            wall_ms: wall.as_secs_f64() * 1e3,
            speedup: Some(baseline.as_secs_f64() / wall.as_secs_f64().max(1e-12)),
            extras: Vec::new(),
        }
    }

    /// Attaches one extra named metric (chainable).
    #[must_use]
    pub fn with_metric(mut self, name: &str, value: f64) -> Self {
        self.extras.push((name.to_string(), value));
        self
    }
}

/// Writes `BENCH_<bench>.json` with the given records and returns its
/// path. The target directory is `$BENCH_JSON_DIR` when set, otherwise
/// the workspace root — trajectory artifacts belong next to the repo's
/// other records, not in whatever directory cargo ran the bench from.
///
/// # Errors
///
/// Propagates file-creation and write failures.
pub fn emit_bench_json(bench: &str, records: &[BenchRecord]) -> std::io::Result<PathBuf> {
    let dir = std::env::var("BENCH_JSON_DIR")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../..").to_string());
    let path = PathBuf::from(dir).join(format!("BENCH_{bench}.json"));
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"bench\": \"{bench}\",\n"));
    out.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"name\": \"{}\", \"wall_ms\": {:.3}",
            r.name, r.wall_ms
        ));
        if let Some(s) = r.speedup {
            out.push_str(&format!(", \"speedup\": {s:.2}"));
        }
        for (key, value) in &r.extras {
            out.push_str(&format!(", \"{key}\": {value:.3}"));
        }
        out.push_str(" }");
        if i + 1 < records.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    let mut file = std::fs::File::create(&path)?;
    file.write_all(out.as_bytes())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_render_expected_json() {
        let dir = std::env::temp_dir().join("codesign_bench_perf_test");
        std::fs::create_dir_all(&dir).unwrap();
        // Serialize access to the env var with a scoped override.
        std::env::set_var("BENCH_JSON_DIR", &dir);
        let records = [
            BenchRecord::timing("baseline", Duration::from_millis(10)),
            BenchRecord::speedup_over("fast", Duration::from_millis(2), Duration::from_millis(10)),
            BenchRecord::timing("served", Duration::from_millis(4))
                .with_metric("req_per_s", 250.0)
                .with_metric("p99_ms", 6.5),
        ];
        let path = emit_bench_json("unit_test", &records).unwrap();
        std::env::remove_var("BENCH_JSON_DIR");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"bench\": \"unit_test\""));
        assert!(text.contains("\"name\": \"baseline\", \"wall_ms\": 10.000 }"));
        assert!(text.contains("\"name\": \"fast\", \"wall_ms\": 2.000, \"speedup\": 5.00 }"));
        assert!(text.contains(
            "\"name\": \"served\", \"wall_ms\": 4.000, \"req_per_s\": 250.000, \"p99_ms\": 6.500 }"
        ));
        std::fs::remove_file(path).unwrap();
    }
}
