//! Regenerates Fig. 4: coarse-grained Bundle evaluation (both methods).

use codesign_bench::experiments::{default_device, fig4, parallelism_from_env};
use codesign_core::evaluate::EvalMethod;

fn main() {
    let dev = default_device();
    let parallelism = parallelism_from_env();
    println!("parallelism: {parallelism} workers (set CODESIGN_PARALLELISM to override)");
    for (label, method) in [
        (
            "Fig. 4(a) - method#1 (fixed head/tail)",
            EvalMethod::FixedHeadTail,
        ),
        (
            "Fig. 4(b) - method#2 (bundle replicated n=3)",
            EvalMethod::Replicated { n: 3 },
        ),
    ] {
        let (evals, selected) = fig4(method, &dev, parallelism).expect("fig4 evaluation");
        println!("== {label} ==");
        println!(
            "{:>6} {:>4} {:>12} {:>10} {:>8} {:>6}",
            "bundle", "PF", "latency(ms)", "IoU(est)", "DSP", "group"
        );
        for e in &evals {
            println!(
                "{:>6} {:>4} {:>12.1} {:>10.3} {:>8} {:>6}",
                e.bundle_id.0,
                e.parallel_factor,
                e.latency_ms,
                e.accuracy,
                e.resources.dsp,
                e.dsp_group
            );
        }
        let ids: Vec<usize> = selected.iter().map(|b| b.0).collect();
        println!("Bundles on the Pareto curves: {ids:?}");
        println!("Paper's selection:            [1, 3, 13, 15, 17]");
        println!();
    }
}
