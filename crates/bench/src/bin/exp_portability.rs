//! Extension experiment: the co-design flow ported to a larger edge
//! device (Ultra96) — same task, same targets, bigger budget.

use codesign_bench::experiments::{parallelism_from_env, portability};

fn main() {
    let rows = portability(parallelism_from_env()).expect("portability study");
    println!("== device portability (15 FPS target @100 MHz) ==");
    println!(
        "{:<24} {:>8} {:>9} {:>7}",
        "device", "FPS", "IoU(est)", "DSP%"
    );
    for r in &rows {
        println!(
            "{:<24} {:>8.1} {:>9.3} {:>7.1}",
            r.device, r.fps, r.best_iou, r.dsp_pct
        );
    }
    if rows.len() >= 2 {
        println!();
        for pair in rows.windows(2) {
            println!(
                "{} -> {}: {:+.1} IoU points at the same target",
                pair[0].device,
                pair[1].device,
                (pair[1].best_iou - pair[0].best_iou) * 100.0
            );
        }
    }
}
