//! Extension experiment: the co-design flow ported to a larger edge
//! device (Ultra96) — same task, same targets, bigger budget.

use codesign_bench::experiments::{parallelism_from_env, portability};

fn main() {
    let rows = portability(parallelism_from_env()).expect("portability study");
    println!("== device portability (15 FPS target @100 MHz) ==");
    println!(
        "{:<24} {:>8} {:>9} {:>7}",
        "device", "FPS", "IoU(est)", "DSP%"
    );
    for r in &rows {
        println!(
            "{:<24} {:>8.1} {:>9.3} {:>7.1}",
            r.device, r.fps, r.best_iou, r.dsp_pct
        );
    }
    if rows.len() == 2 {
        println!();
        println!(
            "larger device buys {:+.1} IoU points at the same target",
            (rows[1].best_iou - rows[0].best_iou) * 100.0
        );
    }
}
