//! Regenerates Table 2: DNN1-3 on the PYNQ-Z1 vs. the published DAC-SDC
//! 2018 FPGA and GPU leaderboard.

use codesign_bench::experiments::{default_device, table2};

fn main() {
    let (ours, published) = table2(&default_device()).expect("table2 evaluation");
    println!("== Table 2 - performance comparison (50K-image evaluation) ==");
    println!(
        "{:<14} {:>6} {:>10} {:>7} {:>7} {:>9} {:>8} | {:>6} {:>6} {:>6} {:>6}",
        "entry", "IoU", "lat(ms)", "FPS", "P(W)", "E(KJ)", "J/pic", "LUT%", "DSP%", "BRAM%", "FF%"
    );
    for r in &ours {
        println!(
            "{:<14} {:>6.3} {:>6.1}@{:<3.0} {:>7.1} {:>7.2} {:>9.2} {:>8.3} | {:>6.1} {:>6.1} {:>6.1} {:>6.1}",
            format!("ours {}", r.name), r.iou, r.latency_ms, r.clock_mhz, r.fps, r.power_w,
            r.energy_kj, r.j_per_pic, r.lut_pct, r.dsp_pct, r.bram_pct, r.ff_pct
        );
    }
    for r in &published {
        let util = r
            .utilization
            .map(|u| {
                format!(
                    "{:>6.1} {:>6.1} {:>6.1} {:>6.1}",
                    u.lut, u.dsp, u.bram, u.ff
                )
            })
            .unwrap_or_else(|| format!("{:>6} {:>6} {:>6} {:>6}", "-", "-", "-", "-"));
        println!(
            "{:<14} {:>6.3} {:>6.1}@{:<3.0} {:>7.1} {:>7.2} {:>9.2} {:>8.3} | {util}",
            r.name, r.iou, r.latency_ms, r.clock_mhz, r.fps, r.power_w, r.energy_kj, r.j_per_pic
        );
    }
    println!();
    let dnn1 = &ours[0];
    let ssd = &published[0];
    let gpu1 = &published[3];
    println!("Headline claims (paper -> measured):");
    println!(
        "  IoU vs FPGA 1st place: +6.2% -> {:+.1}%",
        (dnn1.iou - ssd.iou) * 100.0
    );
    println!(
        "  power vs FPGA 1st place: -40% -> {:+.0}%",
        (dnn1.power_w / ssd.power_w - 1.0) * 100.0
    );
    println!(
        "  energy efficiency vs FPGA 1st place: 2.5x -> {:.1}x",
        ssd.j_per_pic / dnn1.j_per_pic
    );
    println!(
        "  energy efficiency vs GPU 1st place: 3.6x -> {:.1}x (GPU keeps +{:.1}% IoU)",
        gpu1.j_per_pic / dnn1.j_per_pic,
        (gpu1.iou - dnn1.iou) * 100.0
    );
}
