//! Regenerates Fig. 6: hardware-aware DNN search targeting 10 / 15 / 20
//! FPS at 100 MHz on the PYNQ-Z1.

use codesign_bench::experiments::{default_device, fig6, parallelism_from_env};

fn main() {
    let parallelism = parallelism_from_env();
    println!("parallelism: {parallelism} workers (set CODESIGN_PARALLELISM to override)");
    let out = fig6(&default_device(), parallelism).expect("fig6 search");
    println!(
        "== Fig. 6 - DNN exploration (selected bundles {:?}) ==",
        out.selected_bundles
    );
    println!(
        "{} candidate DNNs met a target band (paper: 68)",
        out.explored.len()
    );
    println!();
    println!(
        "{:>9} {:>6} {:>5} {:>7} {:>7} {:>8} {:>9}",
        "target", "bundle", "reps", "max_ch", "act", "FPS@100", "IoU(est)"
    );
    for d in &out.explored {
        println!(
            "{:>9.0} {:>6} {:>5} {:>7} {:>7} {:>8.1} {:>9.3}",
            d.target_fps, d.bundle, d.replications, d.max_channels, d.activation, d.fps, d.accuracy
        );
    }
    println!();
    println!("Best design per target (the paper's DNN1-3 analog):");
    for d in &out.best {
        println!(
            "  target {:>2.0} FPS -> bundle {} x{} reps, max {} ch, {}: {:.1} FPS, IoU {:.3}",
            d.target_fps, d.bundle, d.replications, d.max_channels, d.activation, d.fps, d.accuracy
        );
    }
    println!();
    println!("Paper: DNN1 = bundle 13 x5, max 512 ch, relu4; DNN2 = x4, 384, relu;");
    println!("       DNN3 = x4, 384, relu4. (The simulator substrate is faster than");
    println!("       the physical board, so bands fill with larger models here.)");
}
