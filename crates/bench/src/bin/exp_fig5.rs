//! Regenerates Fig. 5: fine-grained evaluation of the selected Bundles
//! with Relu / Relu4 / Relu8 activation variants.

use codesign_bench::experiments::{default_device, fig5};

fn main() {
    let rows = fig5(&default_device()).expect("fig5 evaluation");
    println!("== Fig. 5 - fine-grained evaluation of bundles {{1, 3, 13, 15, 17}} ==");
    println!(
        "{:>6} {:>6} {:>5} {:>12} {:>10} {:>8}",
        "bundle", "act", "reps", "latency(ms)", "IoU(est)", "DSP"
    );
    for r in &rows {
        println!(
            "{:>6} {:>6} {:>5} {:>12.1} {:>10.3} {:>8}",
            r.bundle_id.0,
            r.activation.to_string(),
            r.n_replications,
            r.latency_ms,
            r.accuracy,
            r.resources.dsp
        );
    }
    println!();
    println!("Paper's observation: Bundles 1 & 3 are favorable in accuracy (more");
    println!("resource, longer latency); Bundle 13 is favorable for real-time");
    println!("targets (less resource, lower latency). Relu (16-bit) trades");
    println!("latency for accuracy against Relu4/Relu8 (8-bit).");
}
