//! Sec. 6 ablation: bottom-up co-design vs. the executable top-down
//! compress-then-map baseline on the identical device and target.

use codesign_bench::experiments::{ablation, default_device};

fn main() {
    let out = ablation(&default_device()).expect("ablation run");
    println!(
        "== Ablation - co-design vs. top-down at {:.0} ms @100 MHz ==",
        out.latency_target_ms
    );
    println!(
        "  bottom-up co-design : IoU {:.3} at {:.1} ms",
        out.codesign_iou, out.codesign_latency_ms
    );
    println!(
        "  top-down (SSD-like -> prune x{} -> map): IoU {:.3} at {:.1} ms (max {} ch kept)",
        out.topdown.prune_rounds, out.topdown.iou, out.topdown.latency_ms, out.topdown.max_channels
    );
    println!();
    println!(
        "Co-design advantage: {:+.1} IoU points (paper: +6.2 against the top-down contest winner)",
        (out.codesign_iou - out.topdown.iou) * 100.0
    );
}
