//! Design-choice ablation: the SCD unit (Algorithm 1) vs. uniform
//! random sampling of the same co-design space under an equal budget.

use codesign_bench::experiments::{default_device, scd_ablation};

fn main() {
    let out = scd_ablation(&default_device()).expect("ablation run");
    println!(
        "== SCD vs random search (bundle 13, 60 +/- 4 ms window, {} evaluations) ==",
        out.budget
    );
    println!(
        "  SCD (Algorithm 1): {} candidates, best IoU {:.3}",
        out.scd_found, out.scd_best_iou
    );
    println!(
        "  uniform random:    {} candidates, best IoU {:.3}",
        out.random_found, out.random_best_iou
    );
    println!();
    println!("The latency-scaled coordinate steps of Algorithm 1 concentrate the");
    println!("budget inside the feasible window instead of spraying the space.");
}
