//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each experiment is a pure function returning serializable rows, so
//! the same code backs the `exp_*` binaries (which print the paper
//! artifact next to the measured one) and the Criterion benches:
//!
//! | Paper artifact | Function | Binary | Bench |
//! |---|---|---|---|
//! | Fig. 4(a) | [`experiments::fig4`] (method#1) | `exp_fig4` | `fig4` |
//! | Fig. 4(b) | [`experiments::fig4`] (method#2) | `exp_fig4` | `fig4` |
//! | Fig. 5 | [`experiments::fig5`] | `exp_fig5` | `fig5` |
//! | Fig. 6 | [`experiments::fig6`] | `exp_fig6` | `fig6` |
//! | Table 2 | [`experiments::table2`] | `exp_table2` | `table2` |
//! | Sec. 6 ablation | [`experiments::ablation`] | `exp_ablation` | `ablation` |
//! | parallel scaling | [`experiments::fig4`] at 1 vs N workers | — | `fig4_parallel` |
//! | estimator probing | incremental vs full-rebuild SCD probes | — | `scd_search` |
//!
//! The binaries and benches read the worker-thread knob from the
//! `CODESIGN_PARALLELISM` environment variable (see
//! [`experiments::parallelism_from_env`]); flow results are
//! bit-identical for any setting. The `scd_search` and `proxy_train`
//! benches additionally emit machine-readable `BENCH_*.json` summaries
//! (see [`perf`]) so the repo's perf trajectory is tracked PR over PR.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod designs;
pub mod experiments;
pub mod perf;

pub use designs::{dnn1_point, dnn2_point, dnn3_point};
pub use perf::{emit_bench_json, BenchRecord};
