//! The headline pin: sharded output is byte-identical to the
//! in-process flow at any worker count, with or without injected
//! worker crashes.
//!
//! Identity is asserted over [`canonical_output_bytes`] — the same
//! artifact the CI smoke leg `cmp`s — so "the same result" means the
//! same coarse records, Bundle selection, Pareto candidates, finalized
//! design points, objectives, and generated-C checksums, byte for
//! byte.

use codesign_core::flow::{CoDesignFlow, FlowConfig};
use codesign_shard::canonical_output_bytes;
use codesign_shard::supervisor::{run, ShardConfig};
use codesign_sim::device::pynq_z1;
use std::path::PathBuf;
use std::time::Duration;

fn flow_config() -> FlowConfig {
    FlowConfig {
        targets_fps: vec![15.0],
        candidates_per_bundle: 2,
        coarse_pf_sweep: vec![16],
        ..FlowConfig::for_device(pynq_z1())
    }
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("codesign_shard_determinism")
        .join(format!("{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn shard_config(name: &str, workers: usize, fault_spec: Option<&str>) -> ShardConfig {
    ShardConfig {
        dir: temp_dir(name),
        flow: flow_config(),
        workers,
        shards: 4,
        max_retries: 2,
        lease: Duration::from_secs(60),
        // Never default to current_exe here: the test harness binary
        // would re-run the whole suite in every "worker".
        worker_exe: PathBuf::from(env!("CARGO_BIN_EXE_codesign-shard")),
        fault_spec: fault_spec.map(str::to_string),
    }
}

#[test]
fn sharded_output_matches_in_process_flow_at_any_worker_count() {
    let direct = CoDesignFlow::new(flow_config()).run().expect("direct flow");
    let direct_bytes = canonical_output_bytes(&direct);

    let (out_1, report_1) = run(&shard_config("w1", 1, None)).expect("1-worker run");
    let (out_4, report_4) = run(&shard_config("w4", 4, None)).expect("4-worker run");

    assert_eq!(
        canonical_output_bytes(&out_1),
        direct_bytes,
        "1-worker sharded output differs from the in-process flow"
    );
    assert_eq!(
        canonical_output_bytes(&out_4),
        direct_bytes,
        "4-worker sharded output differs from the in-process flow"
    );

    // The grid is (1 target × selected Bundles × 2 arms).
    let expected_cells = direct.selected_bundles.len() * 2;
    assert_eq!(report_1.cells, expected_cells);
    assert_eq!(report_4.cells, expected_cells);
    assert_eq!(report_1.shards, 4);
    assert_eq!(report_1.retries, 0, "clean run must not retry");
    assert_eq!(report_4.retries, 0, "clean run must not retry");
    assert_eq!(report_4.lease_reclaims, 0);

    // The designs themselves (not just their bytes) agree.
    assert_eq!(direct.candidates, out_4.candidates);
    assert_eq!(direct.designs.len(), out_4.designs.len());
    for (a, b) in direct.designs.iter().zip(&out_4.designs) {
        assert_eq!(a.point, b.point);
        assert_eq!(a.code, b.code);
    }
}

#[test]
fn injected_crashes_do_not_change_a_bit() {
    // Shards 1 and 3 abort mid-append on their first attempt, leaving
    // torn segment tails; their retries resume from the torn tail.
    let (crashed, report) = run(&shard_config(
        "crash",
        4,
        Some("seed=7;shard.worker.crash=panic@1,3"),
    ))
    .expect("run with injected crashes");
    assert!(
        report.retries >= 2,
        "both injected crashes must show up as retries, got {report:?}"
    );

    let (clean, clean_report) = run(&shard_config("crash_ref", 1, None)).expect("reference run");
    assert_eq!(clean_report.retries, 0);
    assert_eq!(
        canonical_output_bytes(&crashed),
        canonical_output_bytes(&clean),
        "crash-recovered output differs from the clean run"
    );
}
