//! Recovery pins: a real `kill -9` mid-run, and quarantine + restart.
//!
//! These tests exercise the supervision machinery against genuinely
//! dead processes, not simulated failures: the first SIGKILLs a live
//! worker found through its heartbeat file, the second poisons a shard
//! until quarantine and then restarts the sweep in the same directory
//! to show finished shards are reused and the final bytes still match
//! a clean run.

use codesign_core::flow::FlowConfig;
use codesign_shard::supervisor::{run, ShardConfig};
use codesign_shard::worker::heartbeat_path;
use codesign_shard::{canonical_output_bytes, ShardError};
use codesign_sim::device::pynq_z1;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn flow_config() -> FlowConfig {
    FlowConfig {
        targets_fps: vec![15.0],
        candidates_per_bundle: 2,
        coarse_pf_sweep: vec![16],
        ..FlowConfig::for_device(pynq_z1())
    }
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("codesign_shard_recovery")
        .join(format!("{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn shard_config(dir: PathBuf, workers: usize, fault_spec: Option<&str>) -> ShardConfig {
    ShardConfig {
        dir,
        flow: flow_config(),
        workers,
        shards: 2,
        max_retries: 2,
        lease: Duration::from_secs(60),
        worker_exe: PathBuf::from(env!("CARGO_BIN_EXE_codesign-shard")),
        fault_spec: fault_spec.map(str::to_string),
    }
}

/// Parses the `pid N` line of a heartbeat file.
fn heartbeat_pid(dir: &std::path::Path, shard: usize) -> Option<u32> {
    let body = std::fs::read_to_string(heartbeat_path(dir, shard)).ok()?;
    body.lines()
        .find_map(|line| line.strip_prefix("pid "))
        .and_then(|pid| pid.trim().parse().ok())
}

#[test]
fn kill_nine_mid_append_recovers_byte_identically() {
    let dir = temp_dir("kill9");
    // Per-cell delays keep each worker alive for seconds, so the kill
    // below lands mid-shard, after some appends and before others.
    let config = shard_config(dir.clone(), 2, Some("seed=1;shard.cell.delay=delay(250)"));

    let supervisor = {
        let config = config.clone();
        std::thread::spawn(move || run(&config))
    };

    // Find a live worker through its heartbeat and SIGKILL it. Retry
    // until one kill lands — a worker that already exited is ESRCH and
    // we just try the next poll.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut killed = false;
    'hunt: while Instant::now() < deadline {
        for shard in 0..2 {
            if let Some(pid) = heartbeat_pid(&dir, shard) {
                let status = std::process::Command::new("kill")
                    .args(["-9", &pid.to_string()])
                    .status()
                    .expect("spawn kill");
                if status.success() {
                    killed = true;
                    break 'hunt;
                }
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(killed, "never found a live worker to kill");

    let (output, report) = supervisor
        .join()
        .expect("supervisor thread")
        .expect("run survives a kill -9");
    assert!(
        report.retries >= 1,
        "the SIGKILL'd worker must have been retried, got {report:?}"
    );

    // Byte identity against a clean single-worker run (no faults, no
    // delays) in a fresh directory.
    let (clean, _) = run(&shard_config(temp_dir("kill9_ref"), 1, None)).expect("reference run");
    assert_eq!(
        canonical_output_bytes(&output),
        canonical_output_bytes(&clean),
        "output after kill -9 recovery differs from the clean run"
    );
}

#[test]
fn poison_shard_is_quarantined_then_restart_completes() {
    let dir = temp_dir("poison");
    // Shard 1 aborts on *every* attempt; with max_retries = 1 it burns
    // 2 attempts and is quarantined. Shard 0 completes normally.
    let mut config = shard_config(dir.clone(), 2, Some("seed=3;shard.worker.poison=panic@1"));
    config.max_retries = 1;
    match run(&config) {
        Err(ShardError::Quarantined { shards }) => assert_eq!(shards, vec![1]),
        other => panic!(
            "expected quarantine, got {:?}",
            other.map(|(_, report)| report)
        ),
    }

    // Restart the sweep in the same directory without the poison: the
    // finished shard is reused, the quarantined one recomputed.
    let restart = shard_config(dir, 2, None);
    let (output, report) = run(&restart).expect("restart completes");
    assert_eq!(
        report.reused_shards, 1,
        "the healthy shard's segment must be reused, got {report:?}"
    );

    let (clean, _) = run(&shard_config(temp_dir("poison_ref"), 1, None)).expect("reference run");
    assert_eq!(
        canonical_output_bytes(&output),
        canonical_output_bytes(&clean),
        "post-quarantine restart output differs from the clean run"
    );
}
