//! The worker-process side of the sharded search.
//!
//! A worker is a re-exec of the supervisor's own binary with a handful
//! of environment variables (see the `*_ENV` constants) naming the
//! shard directory, the shard index, and the attempt number. It reads
//! the [`SweepSpec`], derives its contiguous cell
//! range from the shard index alone, and appends one record per
//! computed cell to its private segment log. Everything it computes is
//! seeded from what the cell *is*, so two attempts at the same shard —
//! including an attempt resuming after its predecessor was
//! `kill -9`'d mid-append — write byte-identical records.
//!
//! # Liveness protocol
//!
//! Before each cell the worker bumps a heartbeat file
//! ([`heartbeat_path`]) via write-to-temp + rename. The supervisor
//! considers a worker hung when the heartbeat has not changed for a
//! full lease period and reclaims the shard with `SIGKILL`. A worker
//! never *reads* its heartbeat — it is write-only telemetry, so a
//! corrupt or deleted heartbeat file can slow recovery but never
//! corrupt results.
//!
//! # Fault sites
//!
//! Deterministic chaos hooks (see `codesign-faults`), all keyed by
//! shard index except the per-cell delay:
//!
//! * `shard.worker.crash` — on attempt 0, abort mid-append after half
//!   the shard's pending cells, leaving a torn frame at the tail.
//! * `shard.worker.poison` — abort on *every* attempt: the shard can
//!   only be quarantined.
//! * `shard.worker.hang` — on attempt 0, stop heartbeating and sleep
//!   until the lease reaper kills the process.
//! * `shard.cell.delay` — sleep before computing a cell (keyed by the
//!   cell's global index), widening race windows for kill tests.

use codesign_core::parallel::derive_seed;
use codesign_core::{scd_search_with_activation, AccuracyModel, ScdConfig};
use codesign_dnn::bundle::{bundle_by_id, BundleId};
use codesign_faults::{plan_from_env, FaultAction, FaultPlan};
use codesign_hls::cache::EstimateCache;
use codesign_hls::calibrate::calibrate_bundle_with;
use codesign_hls::model::HlsEstimator;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::segment::{encode_segment_record, open_segment, segment_path};
use crate::spec::SweepSpec;
use crate::ShardError;

/// Set (to any value) to make the binary run as a worker.
pub const WORKER_ENV: &str = "CODESIGN_SHARD_WORKER";
/// The shard directory (spec, segments, heartbeats, manifest).
pub const DIR_ENV: &str = "CODESIGN_SHARD_DIR";
/// This worker's shard index.
pub const INDEX_ENV: &str = "CODESIGN_SHARD_INDEX";
/// Attempt number for this shard (0 on first assignment).
pub const ATTEMPT_ENV: &str = "CODESIGN_SHARD_ATTEMPT";

/// Path of shard `shard`'s heartbeat file inside a shard directory.
pub fn heartbeat_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("hb-{shard}"))
}

/// Worker-mode entry point, called first thing in `main`. When the
/// worker environment is absent this returns immediately; when present
/// it runs the shard to completion and **exits the process** (0 on
/// success, 1 on error) — worker processes never fall through into the
/// CLI.
pub fn maybe_run_worker() {
    if std::env::var_os(WORKER_ENV).is_none() {
        return;
    }
    match run_worker_from_env() {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("codesign-shard worker failed: {e}");
            std::process::exit(1);
        }
    }
}

fn env_usize(name: &str) -> Result<usize, ShardError> {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| ShardError::Spec(format!("missing or invalid {name} in worker env")))
}

fn run_worker_from_env() -> Result<(), ShardError> {
    let dir = std::env::var_os(DIR_ENV)
        .map(PathBuf::from)
        .ok_or_else(|| ShardError::Spec(format!("missing {DIR_ENV} in worker env")))?;
    let shard = env_usize(INDEX_ENV)?;
    let attempt = env_usize(ATTEMPT_ENV)?;
    let faults = plan_from_env().map_err(|e| ShardError::Spec(e.to_string()))?;
    run_worker(&dir, shard, attempt, faults.as_deref())
}

/// Bumps the heartbeat atomically (temp + rename). Best-effort: a
/// heartbeat I/O failure must not kill a healthy worker, so errors are
/// swallowed — the worst case is the lease reaper recycling us.
fn beat(dir: &Path, shard: usize, counter: u64) {
    let path = heartbeat_path(dir, shard);
    let tmp = dir.join(format!("hb-{shard}.tmp"));
    let body = format!("pid {}\nbeat {counter}\n", std::process::id());
    let write = std::fs::File::create(&tmp)
        .and_then(|mut f| f.write_all(body.as_bytes()).and_then(|()| f.sync_all()));
    if write.is_ok() {
        let _ = std::fs::rename(&tmp, &path);
    }
}

fn triggered(faults: Option<&FaultPlan>, site: &str, index: u64) -> Option<FaultAction> {
    let plan = faults?;
    match plan.decide_at(site, index) {
        FaultAction::Proceed => None,
        action => Some(action),
    }
}

/// Runs one shard to completion: read the spec, resume the segment,
/// compute every remaining cell, append, sync, done.
///
/// # Errors
///
/// Spec/segment/calibration failures; injected faults abort or hang
/// the process instead of returning.
pub fn run_worker(
    dir: &Path,
    shard: usize,
    attempt: usize,
    faults: Option<&FaultPlan>,
) -> Result<(), ShardError> {
    let spec = SweepSpec::read(dir)?;
    if shard >= spec.shards {
        return Err(ShardError::Spec(format!(
            "shard index {shard} out of range 0..{}",
            spec.shards
        )));
    }

    // Poison: this shard aborts on every attempt — only quarantine
    // ends it.
    if triggered(faults, "shard.worker.poison", shard as u64).is_some() {
        beat(dir, shard, 0);
        std::process::abort();
    }

    let cells = spec.cells();
    let range = spec.shard_cells(shard);
    let (mut log, done) = open_segment(&segment_path(dir, shard))?;
    let pending: Vec<&crate::Cell> = cells[range]
        .iter()
        .filter(|c| !done.contains_key(&c.index))
        .collect();

    // Crash: on the first attempt, die mid-append after half the
    // pending cells — the retry resumes from the torn tail.
    let crash_after =
        if attempt == 0 && triggered(faults, "shard.worker.crash", shard as u64).is_some() {
            Some(pending.len() / 2)
        } else {
            None
        };
    // Hang: on the first attempt, stop heartbeating and wait for the
    // lease reaper.
    let hang = attempt == 0 && triggered(faults, "shard.worker.hang", shard as u64).is_some();

    let cfg = &spec.config;
    let model = AccuracyModel::paper_calibrated();
    let cache = Arc::new(EstimateCache::new());

    // Calibrate each Bundle this worker actually needs, exactly as the
    // flow does (deterministic per Bundle × device, so workers that
    // share a Bundle agree with each other and with the in-process
    // flow).
    let mut estimators: BTreeMap<BundleId, HlsEstimator> = BTreeMap::new();
    for cell in &pending {
        if estimators.contains_key(&cell.bundle) {
            continue;
        }
        let bundle = bundle_by_id(cell.bundle).ok_or_else(|| {
            ShardError::Spec(format!("spec selects unknown bundle {}", cell.bundle.0))
        })?;
        let params = calibrate_bundle_with(&bundle, &cfg.device, &[1, 2, 3, 4], 96)
            .map_err(|e| ShardError::Spec(format!("calibration failed: {e}")))?;
        let estimator =
            HlsEstimator::new(params, cfg.device.clone()).with_cache(Arc::clone(&cache));
        estimators.insert(cell.bundle, estimator);
    }

    let mut beats = 0u64;
    for (appended, cell) in pending.iter().enumerate() {
        beats += 1;
        beat(dir, shard, beats);

        if crash_after == Some(appended) {
            // Simulate a power-cut / SIGKILL mid-append: a frame header
            // promising more payload than will ever arrive, then abort
            // without unwinding.
            let _ = std::fs::OpenOptions::new()
                .append(true)
                .open(segment_path(dir, shard))
                .and_then(|mut f| {
                    f.write_all(&1_000u32.to_le_bytes())?;
                    f.write_all(&0xdead_beef_dead_beefu64.to_le_bytes())?;
                    f.write_all(&[0xab; 13])?;
                    f.sync_all()
                });
            std::process::abort();
        }
        if hang {
            // Stop heartbeating forever; the supervisor's lease reaper
            // will SIGKILL us once the lease expires.
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
        if let Some(FaultAction::Delay(d)) =
            triggered(faults, "shard.cell.delay", cell.index as u64)
        {
            std::thread::sleep(d);
        }

        let bundle = bundle_by_id(cell.bundle).expect("validated above");
        let estimator = &estimators[&cell.bundle];
        let target_ms = 1000.0 / cell.fps;
        let tolerance_ms = target_ms - 1000.0 / (cell.fps + cfg.fps_tolerance);
        // Identical to the flow's stream id: what the cell is, never
        // when or where it runs.
        let stream = ((cell.ti as u64) << 32) | ((cell.bundle.0 as u64) << 8) | cell.arm;
        let scd = ScdConfig {
            latency_target_ms: target_ms,
            tolerance_ms,
            clock_mhz: cfg.clock_mhz,
            candidates: cfg.candidates_per_bundle,
            max_iterations: 400,
            seed: derive_seed(cfg.seed, stream),
        };
        let found = scd_search_with_activation(&bundle, estimator, &model, &scd, cell.activation);
        log.append(&encode_segment_record(cell.index, &found))?;
    }
    // Edge case: a crash shard with nothing pending (all cells resumed
    // from the segment) still has to die on attempt 0 so the injection
    // is observable; there is no append to tear, so a plain abort.
    if crash_after.is_some() && pending.is_empty() {
        std::process::abort();
    }
    log.sync()?;
    Ok(())
}
