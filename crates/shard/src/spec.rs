//! The sweep spec: what the supervisor tells its workers to compute.
//!
//! A [`SweepSpec`] pins everything a worker needs to reproduce its
//! slice of the flow's SCD stage bit-for-bit: the full
//! [`FlowConfig`] (minus parallelism, which never affects results),
//! the Bundle selection the supervisor computed, and the shard count.
//! The supervisor writes it once to `spec.bin` in the shard directory;
//! each worker (including the retry of a crashed one) reads it back
//! and derives its cell range from its shard index alone.
//!
//! # Work grid
//!
//! The grid is the flow's own SCD item list: the nested
//! `FPS target × selected Bundle × quantization arm` loop, flattened
//! in that exact order into [`Cell`]s with global indices. Shard `i`
//! of `S` owns the contiguous range [`shard_range`]`(cells, S, i)`.
//! Contiguity matters for determinism only in that every cell is owned
//! by exactly one shard; the merge keys on the global cell index, so
//! any partition would produce the same bytes.
//!
//! # File format
//!
//! ```text
//! magic "CDSHSPC1" (8) | payload_len u32 LE | fnv1a(payload) u64 LE | payload
//! ```
//!
//! The payload is the codec encoding of the fields above plus the
//! [`config_fingerprint`] of the equivalent flow config, re-verified
//! on read so a worker can never run somebody else's sweep.

use codesign_core::checkpoint::config_fingerprint;
use codesign_core::flow::FlowConfig;
use codesign_core::parallel::Parallelism;
use codesign_dnn::bundle::BundleId;
use codesign_dnn::quant::Activation;
use codesign_sim::device::FpgaDevice;
use codesign_store::{fnv1a, ByteReader, ByteWriter, CodecError};
use std::ops::Range;
use std::path::Path;

use crate::ShardError;

/// Magic bytes opening a `spec.bin`.
pub const SPEC_MAGIC: [u8; 8] = *b"CDSHSPC1";

/// File name of the spec inside a shard directory.
pub const SPEC_FILE: &str = "spec.bin";

/// The search arms every cell sweeps (the flow's 16-bit and 8-bit
/// quantization arms, in its exact order).
pub const ARMS: [Activation; 2] = [Activation::Relu, Activation::Relu4];

/// One cell of the (target × Bundle × arm) work grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Global index in the flattened grid (the merge key).
    pub index: usize,
    /// Index of the FPS target in `config.targets_fps`.
    pub ti: usize,
    /// The FPS target itself.
    pub fps: f64,
    /// The Bundle this cell searches.
    pub bundle: BundleId,
    /// Quantization-arm index (0 = Relu, 1 = Relu4) — part of the
    /// seed-stream id.
    pub arm: u64,
    /// The activation the arm index denotes.
    pub activation: Activation,
}

/// Everything a worker needs to compute its shard deterministically.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// The flow configuration (parallelism is irrelevant to results;
    /// workers run their cells sequentially).
    pub config: FlowConfig,
    /// Bundles selected by the supervisor's coarse stage, in selection
    /// order.
    pub selected: Vec<BundleId>,
    /// Total number of shards the grid is partitioned into.
    pub shards: usize,
}

impl SweepSpec {
    /// The flattened work grid, in the flow's item order.
    pub fn cells(&self) -> Vec<Cell> {
        let mut cells = Vec::new();
        for (ti, &fps) in self.config.targets_fps.iter().enumerate() {
            for &bundle in &self.selected {
                for (arm, activation) in ARMS.into_iter().enumerate() {
                    cells.push(Cell {
                        index: cells.len(),
                        ti,
                        fps,
                        bundle,
                        arm: arm as u64,
                        activation,
                    });
                }
            }
        }
        cells
    }

    /// Global cell range owned by `shard`.
    pub fn shard_cells(&self, shard: usize) -> Range<usize> {
        shard_range(self.cells().len(), self.shards, shard)
    }

    /// Serializes the spec to its framed byte form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        let dev = &self.config.device;
        w.put_str(&dev.name);
        w.put_varint(dev.dsp);
        w.put_varint(dev.lut);
        w.put_varint(dev.ff);
        w.put_varint(dev.bram_18k);
        w.put_f64(dev.dram_bytes_per_cycle);
        w.put_len(dev.clock_mhz.len());
        for &mhz in &dev.clock_mhz {
            w.put_f64(mhz);
        }
        w.put_len(self.config.targets_fps.len());
        for &fps in &self.config.targets_fps {
            w.put_f64(fps);
        }
        w.put_f64(self.config.clock_mhz);
        w.put_f64(self.config.fps_tolerance);
        w.put_varint(self.config.candidates_per_bundle as u64);
        w.put_len(self.config.coarse_pf_sweep.len());
        for &pf in &self.config.coarse_pf_sweep {
            w.put_varint(pf as u64);
        }
        w.put_varint(self.config.eval_replications as u64);
        w.put_u64(self.config.seed);
        w.put_len(self.selected.len());
        for id in &self.selected {
            w.put_varint(id.0 as u64);
        }
        w.put_varint(self.shards as u64);
        w.put_u64(config_fingerprint(&self.config));
        let payload = w.into_bytes();

        let mut framed = Vec::with_capacity(20 + payload.len());
        framed.extend_from_slice(&SPEC_MAGIC);
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        framed.extend_from_slice(&payload);
        framed
    }

    /// Parses a spec from its framed byte form, verifying frame
    /// checksum and config fingerprint.
    ///
    /// # Errors
    ///
    /// [`ShardError::Spec`] on a bad frame, [`ShardError::Codec`] on a
    /// truncated payload.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ShardError> {
        if bytes.len() < 20 || bytes[..8] != SPEC_MAGIC {
            return Err(ShardError::Spec("not a sweep spec (bad magic)".into()));
        }
        let len = u32::from_le_bytes(bytes[8..12].try_into().expect("4")) as usize;
        let checksum = u64::from_le_bytes(bytes[12..20].try_into().expect("8"));
        let payload = bytes
            .get(20..20 + len)
            .ok_or_else(|| ShardError::Spec("truncated sweep spec".into()))?;
        if fnv1a(payload) != checksum {
            return Err(ShardError::Spec("sweep spec checksum mismatch".into()));
        }
        let mut r = ByteReader::new(payload);
        let spec = Self::decode_payload(&mut r)?;
        let stored = r.read_u64()?;
        r.finish()?;
        let actual = config_fingerprint(&spec.config);
        if stored != actual {
            return Err(ShardError::Spec(format!(
                "sweep spec fingerprint mismatch (stored {stored:#018x}, decoded {actual:#018x})"
            )));
        }
        Ok(spec)
    }

    fn decode_payload(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let name = r.read_str()?;
        let dsp = r.read_varint()?;
        let lut = r.read_varint()?;
        let ff = r.read_varint()?;
        let bram_18k = r.read_varint()?;
        let dram_bytes_per_cycle = r.read_f64()?;
        let n = r.read_len()?;
        let mut clock_mhz_list = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            clock_mhz_list.push(r.read_f64()?);
        }
        let device = FpgaDevice {
            name,
            dsp,
            lut,
            ff,
            bram_18k,
            dram_bytes_per_cycle,
            clock_mhz: clock_mhz_list,
        };
        let n = r.read_len()?;
        let mut targets_fps = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            targets_fps.push(r.read_f64()?);
        }
        let clock_mhz = r.read_f64()?;
        let fps_tolerance = r.read_f64()?;
        let candidates_per_bundle = r.read_varint()? as usize;
        let n = r.read_len()?;
        let mut coarse_pf_sweep = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            coarse_pf_sweep.push(r.read_varint()? as usize);
        }
        let eval_replications = r.read_varint()? as usize;
        let seed = r.read_u64()?;
        let n = r.read_len()?;
        let mut selected = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            selected.push(BundleId(r.read_varint()? as usize));
        }
        let shards = r.read_varint()? as usize;
        Ok(Self {
            config: FlowConfig {
                device,
                targets_fps,
                clock_mhz,
                fps_tolerance,
                candidates_per_bundle,
                coarse_pf_sweep,
                eval_replications,
                seed,
                // Workers run their cells sequentially; parallelism
                // never affects results, so it is not part of the spec.
                parallelism: Parallelism::Fixed(1),
            },
            selected,
            shards,
        })
    }

    /// Writes the spec to `dir/spec.bin` (truncating any previous one
    /// — the content is deterministic for one config, so a restart
    /// rewrites identical bytes).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::write(dir.join(SPEC_FILE), self.to_bytes())
    }

    /// Reads the spec back from `dir/spec.bin`.
    ///
    /// # Errors
    ///
    /// I/O failures plus everything [`from_bytes`](Self::from_bytes)
    /// rejects.
    pub fn read(dir: &Path) -> Result<Self, ShardError> {
        let bytes = std::fs::read(dir.join(SPEC_FILE))?;
        Self::from_bytes(&bytes)
    }
}

/// Contiguous cell range of shard `shard` when `cells` cells are split
/// into `shards` near-equal parts (the first `cells % shards` shards
/// get one extra).
pub fn shard_range(cells: usize, shards: usize, shard: usize) -> Range<usize> {
    assert!(shard < shards, "shard {shard} out of range 0..{shards}");
    let lo = cells * shard / shards;
    let hi = cells * (shard + 1) / shards;
    lo..hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use codesign_sim::device::pynq_z1;

    fn spec() -> SweepSpec {
        SweepSpec {
            config: FlowConfig {
                targets_fps: vec![10.0, 15.0, 20.0],
                candidates_per_bundle: 2,
                coarse_pf_sweep: vec![16],
                parallelism: Parallelism::Fixed(1),
                ..FlowConfig::for_device(pynq_z1())
            },
            selected: vec![BundleId(1), BundleId(3), BundleId(13)],
            shards: 4,
        }
    }

    #[test]
    fn spec_round_trips_through_bytes() {
        let s = spec();
        let decoded = SweepSpec::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(decoded.config, s.config);
        assert_eq!(decoded.selected, s.selected);
        assert_eq!(decoded.shards, s.shards);
    }

    #[test]
    fn corrupt_spec_is_rejected() {
        let s = spec();
        let mut bytes = s.to_bytes();
        // Flip one payload bit.
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        assert!(SweepSpec::from_bytes(&bytes).is_err());
        // Truncations are rejected, never garbage-decoded.
        let whole = s.to_bytes();
        for keep in 0..whole.len() {
            assert!(SweepSpec::from_bytes(&whole[..keep]).is_err(), "cut {keep}");
        }
    }

    #[test]
    fn cells_follow_the_flow_item_order() {
        let s = spec();
        let cells = s.cells();
        // 3 targets × 3 bundles × 2 arms.
        assert_eq!(cells.len(), 18);
        assert_eq!(cells[0].ti, 0);
        assert_eq!(cells[0].bundle, BundleId(1));
        assert_eq!(cells[0].arm, 0);
        assert_eq!(cells[0].activation, Activation::Relu);
        assert_eq!(cells[1].arm, 1);
        assert_eq!(cells[1].activation, Activation::Relu4);
        assert_eq!(cells[2].bundle, BundleId(3));
        assert_eq!(cells[6].ti, 1);
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
    }

    #[test]
    fn shard_ranges_partition_the_grid_exactly() {
        for cells in [0usize, 1, 5, 17, 18, 64] {
            for shards in [1usize, 2, 3, 4, 7, 16] {
                let mut covered = Vec::new();
                for s in 0..shards {
                    covered.extend(shard_range(cells, shards, s));
                }
                let expected: Vec<usize> = (0..cells).collect();
                assert_eq!(covered, expected, "cells={cells} shards={shards}");
            }
        }
    }
}
