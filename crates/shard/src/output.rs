//! Canonical bytes of a flow output — the determinism artifact.
//!
//! The crate's headline guarantee is that a sweep's result does not
//! depend on how many processes computed it or how many of them
//! crashed along the way. "Result" needs a precise definition to be
//! testable; this module provides it: a byte serialization of
//! everything a [`FlowOutput`] *decides* — the Bundle selection, every
//! Pareto candidate with its objectives, and every finalized design
//! including a checksum of its generated HLS code. Runtime artifacts
//! (cache statistics, wall-clock) are deliberately excluded: they
//! describe the run, not the answer.
//!
//! Tests and the CI smoke leg compare these bytes across 1-process,
//! N-process, and N-process-with-injected-crash runs; `cmp` on the
//! emitted files is the whole assertion.

use codesign_core::checkpoint::{encode_candidate, encode_point};
use codesign_core::FlowOutput;
use codesign_store::{fnv1a, ByteWriter};

/// Serializes the decision content of `output` canonically, with a
/// trailing FNV-1a checksum of everything before it.
pub fn canonical_output_bytes(output: &FlowOutput) -> Vec<u8> {
    let mut w = ByteWriter::new();

    w.put_len(output.coarse.len());
    for e in &output.coarse {
        w.put_varint(e.bundle_id.0 as u64);
        w.put_varint(e.parallel_factor as u64);
        w.put_f64(e.latency_ms);
        w.put_varint(e.resources.dsp);
        w.put_varint(e.resources.lut);
        w.put_varint(e.resources.ff);
        w.put_varint(e.resources.bram_18k);
        w.put_f64(e.accuracy);
        w.put_varint(e.dsp_group as u64);
    }

    w.put_len(output.selected_bundles.len());
    for id in &output.selected_bundles {
        w.put_varint(id.0 as u64);
    }

    w.put_len(output.candidates.len());
    for (target_fps, c) in &output.candidates {
        w.put_f64(*target_fps);
        encode_candidate(&mut w, c);
    }

    w.put_len(output.designs.len());
    for d in &output.designs {
        w.put_f64(d.target_fps);
        encode_point(&mut w, &d.point);
        w.put_f64(d.accuracy);
        w.put_f64(d.latency_ms);
        w.put_f64(d.fps);
        // The generated Auto-HLS source, by length + checksum: enough
        // to pin byte identity without embedding kilobytes of C++.
        w.put_len(d.code.len());
        w.put_u64(fnv1a(d.code.as_bytes()));
    }

    let checksum = fnv1a(w.as_bytes());
    w.put_u64(checksum);
    w.into_bytes()
}
