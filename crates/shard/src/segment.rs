//! Per-worker result segments.
//!
//! Each shard's worker appends its results to its own [`RecordLog`]
//! (stream kind [`StreamKind::ShardSegment`]) at
//! [`segment_path`]`(dir, shard)` — one record per grid cell, keyed by
//! the cell's global index. One file per shard means workers never
//! share a write path, so no cross-process append interleaving can
//! reorder anything; the supervisor merges by cell index, which every
//! partition produces in the same total order.
//!
//! A record is the cell's *complete* result: the append is the commit
//! point. A worker killed mid-append leaves a torn frame that the
//! log's recovery truncates on the next open, so a retried attempt
//! resumes from the last whole cell and recomputes the rest — the
//! cell's seed depends only on what the cell is, so the recomputed
//! bytes match what the dead worker would have written.

use codesign_core::checkpoint::{decode_candidate, encode_candidate};
use codesign_core::Candidate;
use codesign_store::{ByteReader, ByteWriter, CodecError, LogOptions, RecordLog, StreamKind};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::ShardError;

/// Path of shard `shard`'s segment log inside a shard directory.
pub fn segment_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("seg-{shard}.log"))
}

/// Encodes one cell result: global index + its candidate list.
pub fn encode_segment_record(cell_index: usize, candidates: &[Candidate]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_varint(cell_index as u64);
    w.put_len(candidates.len());
    for c in candidates {
        encode_candidate(&mut w, c);
    }
    w.into_bytes()
}

/// Decodes one cell result back.
///
/// # Errors
///
/// [`CodecError`] when the payload does not parse.
pub fn decode_segment_record(payload: &[u8]) -> Result<(usize, Vec<Candidate>), CodecError> {
    let mut r = ByteReader::new(payload);
    let index = r.read_varint()? as usize;
    let n = r.read_len()?;
    let mut candidates = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        candidates.push(decode_candidate(&mut r)?);
    }
    r.finish()?;
    Ok((index, candidates))
}

/// Opens (creating if absent) a segment log for appending, replaying
/// whatever whole records survived — the worker-resume entry point.
/// Torn tails are truncated by the log itself; duplicate cell records
/// resolve last-write-wins (identical bytes anyway, by determinism).
///
/// # Errors
///
/// [`ShardError::Log`] on open failures. A dead previous attempt's
/// stale advisory lock is taken over, not an error.
pub fn open_segment(
    path: &Path,
) -> Result<(RecordLog, BTreeMap<usize, Vec<Candidate>>), ShardError> {
    let (log, records, _recovery) =
        RecordLog::open_with(path, StreamKind::ShardSegment, LogOptions::default())?;
    let mut cells = BTreeMap::new();
    for payload in &records {
        // A framed record that fails to decode is schema drift; drop it
        // and let the worker recompute that cell.
        if let Ok((index, candidates)) = decode_segment_record(payload) {
            cells.insert(index, candidates);
        }
    }
    Ok((log, cells))
}

/// Reads a segment's whole records without keeping a write handle —
/// the supervisor's merge entry point (workers are reaped first, so a
/// leftover lock is always stale and taken over).
///
/// # Errors
///
/// [`ShardError::Log`] on open failures.
pub fn read_segment(path: &Path) -> Result<BTreeMap<usize, Vec<Candidate>>, ShardError> {
    let (_log, cells) = open_segment(path)?;
    Ok(cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use codesign_dnn::bundle::{bundle_by_id, BundleId};
    use codesign_dnn::quant::Activation;
    use codesign_dnn::space::DesignPoint;
    use codesign_hls::model::Estimate;
    use codesign_sim::report::ResourceUsage;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("codesign_shard_segment_tests")
            .join(format!(
                "{name}_{}_{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn candidate(accuracy: f64) -> Candidate {
        Candidate {
            point: DesignPoint {
                bundle: bundle_by_id(BundleId(1)).unwrap(),
                n_replications: 2,
                downsample: vec![true, false],
                expansion: vec![1.0, 1.5],
                parallel_factor: 8,
                activation: Activation::Relu,
                base_channels: 24,
                max_channels: 96,
            },
            estimate: Estimate {
                latency_cycles: 1_000,
                resources: ResourceUsage::default(),
            },
            latency_ms: 40.0,
            accuracy,
        }
    }

    #[test]
    fn segment_records_round_trip_and_resume() {
        let dir = temp_dir("roundtrip");
        let path = segment_path(&dir, 3);
        {
            let (mut log, cells) = open_segment(&path).unwrap();
            assert!(cells.is_empty());
            log.append(&encode_segment_record(7, &[candidate(0.5), candidate(0.6)]))
                .unwrap();
            log.append(&encode_segment_record(8, &[])).unwrap();
            log.sync().unwrap();
        }
        let cells = read_segment(&path).unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[&7].len(), 2);
        assert!((cells[&7][1].accuracy - 0.6).abs() < 1e-12);
        assert!(cells[&8].is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_dropped_on_resume() {
        let dir = temp_dir("torn");
        let path = segment_path(&dir, 0);
        {
            let (mut log, _) = open_segment(&path).unwrap();
            log.append(&encode_segment_record(0, &[candidate(0.4)]))
                .unwrap();
            log.sync().unwrap();
        }
        // Simulate a kill -9 mid-append: a frame header promising more
        // bytes than were ever written.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(&100u32.to_le_bytes()).unwrap();
            f.write_all(&0xdead_beef_dead_beefu64.to_le_bytes())
                .unwrap();
            f.write_all(&[0xab; 10]).unwrap();
        }
        let (mut log, cells) = open_segment(&path).unwrap();
        assert_eq!(cells.len(), 1, "whole record survives, torn one does not");
        // The truncated log accepts new appends cleanly.
        log.append(&encode_segment_record(1, &[candidate(0.7)]))
            .unwrap();
        log.sync().unwrap();
        drop(log);
        let cells = read_segment(&path).unwrap();
        assert_eq!(cells.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
