//! The `codesign-shard` binary: crash-tolerant multi-process search.
//!
//! ```text
//! codesign-shard --dir PATH [--workers N] [--shards N] [--targets CSV]
//!                [--candidates N] [--pf-sweep CSV] [--seed N]
//!                [--device NAME] [--max-retries N] [--lease-ms N]
//!                [--emit PATH]
//! ```
//!
//! Runs the full co-design flow with its SCD stage fanned out across
//! worker processes (re-execs of this same binary). `--emit PATH`
//! writes the canonical output bytes — the determinism artifact two
//! runs can be compared by with `cmp`. A fault-plan spec in
//! `CODESIGN_FAULT_SPEC` is forwarded to every worker, which is how
//! the CI smoke leg injects a crash.
//!
//! Exit codes: 0 on success, 2 when shards were quarantined (partial
//! results are never emitted), 1 on any other failure.

use codesign_core::FlowConfig;
use codesign_shard::supervisor::{run, ShardConfig};
use codesign_shard::{canonical_output_bytes, maybe_run_worker, ShardError};
use codesign_sim::device::{pynq_z1, ultra96, zcu104};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "usage: codesign-shard --dir PATH [--workers N] [--shards N] \
                     [--targets CSV] [--candidates N] [--pf-sweep CSV] [--seed N] \
                     [--device pynq_z1|ultra96|zcu104] [--max-retries N] \
                     [--lease-ms N] [--emit PATH]";

struct Options {
    config: ShardConfig,
    emit: Option<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut dir: Option<PathBuf> = None;
    let mut flow = FlowConfig::for_device(pynq_z1());
    let mut workers = 2usize;
    let mut shards = 0usize;
    let mut max_retries = 2u32;
    let mut lease_ms = 30_000u64;
    let mut emit: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |what: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} expects {what}"))
        };
        match flag.as_str() {
            "--dir" => dir = Some(PathBuf::from(value("a directory path")?)),
            "--workers" => workers = parse_num(&value("a process count")?, flag)?,
            "--shards" => shards = parse_num(&value("a shard count")?, flag)?,
            "--targets" => {
                flow.targets_fps = parse_csv(&value("a CSV of FPS targets")?, flag)?;
            }
            "--candidates" => {
                flow.candidates_per_bundle = parse_num(&value("a candidate count")?, flag)?;
            }
            "--pf-sweep" => {
                let pfs: Vec<f64> = parse_csv(&value("a CSV of parallel factors")?, flag)?;
                flow.coarse_pf_sweep = pfs.into_iter().map(|pf| pf as usize).collect();
            }
            "--seed" => flow.seed = parse_num(&value("a seed")?, flag)?,
            "--device" => {
                flow.device = match value("a device name")?.as_str() {
                    "pynq_z1" => pynq_z1(),
                    "ultra96" => ultra96(),
                    "zcu104" => zcu104(),
                    other => return Err(format!("unknown device {other:?}\n{USAGE}")),
                };
            }
            "--max-retries" => max_retries = parse_num(&value("a retry budget")?, flag)?,
            "--lease-ms" => lease_ms = parse_num(&value("a lease in ms")?, flag)?,
            "--emit" => emit = Some(PathBuf::from(value("a file path")?)),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    let dir = dir.ok_or_else(|| format!("--dir is required\n{USAGE}"))?;
    let mut config = ShardConfig::new(dir, flow).map_err(|e| e.to_string())?;
    config.workers = workers;
    config.shards = shards;
    config.max_retries = max_retries;
    config.lease = Duration::from_millis(lease_ms);
    // Forward whatever fault spec this process was launched with; the
    // supervisor scrubs the variable from workers when None.
    config.fault_spec = std::env::var(codesign_faults::SPEC_ENV).ok();
    Ok(Options { config, emit })
}

fn parse_num<T: std::str::FromStr>(text: &str, flag: &str) -> Result<T, String> {
    text.parse()
        .map_err(|_| format!("{flag} expects a number, got {text:?}"))
}

fn parse_csv(text: &str, flag: &str) -> Result<Vec<f64>, String> {
    text.split(',')
        .map(|part| {
            part.trim()
                .parse()
                .map_err(|_| format!("{flag} expects comma-separated numbers, got {part:?}"))
        })
        .collect()
}

fn main() -> ExitCode {
    // Worker mode exits inside; the supervisor path continues.
    maybe_run_worker();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    match run(&options.config) {
        Ok((output, report)) => {
            let bytes = canonical_output_bytes(&output);
            println!(
                "codesign-shard: {} cells in {} shards, {} reused, {} retries, \
                 {} lease reclaims, {} designs",
                report.cells,
                report.shards,
                report.reused_shards,
                report.retries,
                report.lease_reclaims,
                output.designs.len(),
            );
            if let Some(path) = options.emit {
                if let Err(e) = std::fs::write(&path, &bytes) {
                    eprintln!("codesign-shard: cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                println!(
                    "codesign-shard: canonical output ({} bytes) at {}",
                    bytes.len(),
                    path.display()
                );
            }
            ExitCode::SUCCESS
        }
        Err(ShardError::Quarantined { shards }) => {
            eprintln!("codesign-shard: quarantined shards {shards:?}; no output emitted");
            ExitCode::from(2)
        }
        Err(e) => {
            eprintln!("codesign-shard: {e}");
            ExitCode::FAILURE
        }
    }
}
