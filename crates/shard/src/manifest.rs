//! The supervisor's manifest log: shard claims, completions, leases.
//!
//! The manifest is a [`RecordLog`] (stream kind
//! [`StreamKind::ShardManifest`]) that only the supervisor writes —
//! its advisory lock is held for the whole run, so a second supervisor
//! pointed at the same directory fails with a typed lock error instead
//! of fighting over shards. Records, in append order, tell the story
//! of the run:
//!
//! * `Plan` — fingerprint, shard count, cell count. Written once; a
//!   restart with a different config is a typed mismatch.
//! * `Claim` — shard assigned to a worker pid for an attempt.
//! * `Done` — the worker exited cleanly and its segment verified.
//! * `Failed` — the attempt died (nonzero exit, signal, expired
//!   lease) with a reason.
//! * `Quarantined` — the shard failed `max_retries + 1` attempts and
//!   is poisoned; the run reports it instead of retrying forever.
//!
//! Replay on restart trusts only `Plan` and `Done` records (`Done`
//! shards are additionally re-verified against their segment files
//! before reuse); claims and failures are history. Attempt budgets
//! reset on restart, so a previously quarantined run can be retried
//! with a clean slate after the underlying cause is fixed.

use codesign_store::{ByteReader, ByteWriter, CodecError, LogOptions, RecordLog, StreamKind};
use std::collections::BTreeSet;
use std::io;
use std::path::Path;

use crate::ShardError;

/// File name of the manifest inside a shard directory.
pub const MANIFEST_FILE: &str = "manifest.log";

const TAG_PLAN: u8 = 1;
const TAG_CLAIM: u8 = 2;
const TAG_DONE: u8 = 3;
const TAG_FAILED: u8 = 4;
const TAG_QUARANTINED: u8 = 5;

/// The run parameters pinned by the first manifest record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanRecord {
    /// [`config_fingerprint`](codesign_core::checkpoint::config_fingerprint)
    /// of the flow config.
    pub fingerprint: u64,
    /// Number of shards the grid was partitioned into.
    pub shards: usize,
    /// Total cells in the grid.
    pub cells: usize,
}

/// What a manifest replay found on disk.
#[derive(Debug, Clone, Default)]
pub struct ManifestState {
    /// The plan record, when one was written.
    pub plan: Option<PlanRecord>,
    /// Shards recorded `Done` (to be re-verified against segments).
    pub done: BTreeSet<usize>,
    /// Shards recorded `Quarantined` in an earlier run (informational;
    /// attempt budgets reset on restart).
    pub quarantined: BTreeSet<usize>,
    /// Total `Failed` records across the log's history.
    pub failures: usize,
}

/// The supervisor's handle on the manifest log.
#[derive(Debug)]
pub struct Manifest {
    log: RecordLog,
}

impl Manifest {
    /// Opens (creating if absent) the manifest at
    /// `dir/`[`MANIFEST_FILE`], replaying its records. Holds the log's
    /// advisory lock until dropped — one supervisor per directory.
    ///
    /// # Errors
    ///
    /// [`ShardError::Log`] on open/lock failures (a live second
    /// supervisor surfaces here as `Locked`).
    pub fn open(dir: &Path) -> Result<(Self, ManifestState), ShardError> {
        let options = LogOptions {
            // Manifest records are rare (a handful per shard) and are
            // the recovery source of truth — sync each one.
            sync_on_append: true,
            ..LogOptions::default()
        };
        let (log, records, _recovery) =
            RecordLog::open_with(&dir.join(MANIFEST_FILE), StreamKind::ShardManifest, options)?;
        let mut state = ManifestState::default();
        for payload in &records {
            // A record that framed correctly but does not decode is
            // schema drift — ignore it; the affected shard just reruns.
            let _ = replay(payload, &mut state);
        }
        Ok((Self { log }, state))
    }

    /// Records the run plan (first record of a fresh manifest).
    ///
    /// # Errors
    ///
    /// Propagates append I/O failures.
    pub fn record_plan(&mut self, plan: PlanRecord) -> io::Result<()> {
        let mut w = ByteWriter::new();
        w.put_u8(TAG_PLAN);
        w.put_u64(plan.fingerprint);
        w.put_varint(plan.shards as u64);
        w.put_varint(plan.cells as u64);
        self.log.append(w.as_bytes())
    }

    /// Records a shard claim: `shard` assigned to worker `pid` for
    /// `attempt`.
    ///
    /// # Errors
    ///
    /// Propagates append I/O failures.
    pub fn record_claim(&mut self, shard: usize, attempt: u32, pid: u32) -> io::Result<()> {
        let mut w = ByteWriter::new();
        w.put_u8(TAG_CLAIM);
        w.put_varint(shard as u64);
        w.put_varint(attempt as u64);
        w.put_varint(pid as u64);
        self.log.append(w.as_bytes())
    }

    /// Records a shard completion.
    ///
    /// # Errors
    ///
    /// Propagates append I/O failures.
    pub fn record_done(&mut self, shard: usize, attempt: u32) -> io::Result<()> {
        let mut w = ByteWriter::new();
        w.put_u8(TAG_DONE);
        w.put_varint(shard as u64);
        w.put_varint(attempt as u64);
        self.log.append(w.as_bytes())
    }

    /// Records a failed attempt with its reason.
    ///
    /// # Errors
    ///
    /// Propagates append I/O failures.
    pub fn record_failed(&mut self, shard: usize, attempt: u32, reason: &str) -> io::Result<()> {
        let mut w = ByteWriter::new();
        w.put_u8(TAG_FAILED);
        w.put_varint(shard as u64);
        w.put_varint(attempt as u64);
        w.put_str(reason);
        self.log.append(w.as_bytes())
    }

    /// Records a shard quarantine after exhausting its attempt budget.
    ///
    /// # Errors
    ///
    /// Propagates append I/O failures.
    pub fn record_quarantined(&mut self, shard: usize, attempts: u32) -> io::Result<()> {
        let mut w = ByteWriter::new();
        w.put_u8(TAG_QUARANTINED);
        w.put_varint(shard as u64);
        w.put_varint(attempts as u64);
        self.log.append(w.as_bytes())
    }
}

fn replay(payload: &[u8], state: &mut ManifestState) -> Result<(), CodecError> {
    let mut r = ByteReader::new(payload);
    match r.read_u8()? {
        TAG_PLAN => {
            let plan = PlanRecord {
                fingerprint: r.read_u64()?,
                shards: r.read_varint()? as usize,
                cells: r.read_varint()? as usize,
            };
            r.finish()?;
            state.plan = Some(plan);
        }
        TAG_CLAIM => {
            let _shard = r.read_varint()?;
            let _attempt = r.read_varint()?;
            let _pid = r.read_varint()?;
            r.finish()?;
        }
        TAG_DONE => {
            let shard = r.read_varint()? as usize;
            let _attempt = r.read_varint()?;
            r.finish()?;
            state.done.insert(shard);
        }
        TAG_FAILED => {
            let _shard = r.read_varint()?;
            let _attempt = r.read_varint()?;
            let _reason = r.read_str()?;
            r.finish()?;
            state.failures += 1;
        }
        TAG_QUARANTINED => {
            let shard = r.read_varint()? as usize;
            let _attempts = r.read_varint()?;
            r.finish()?;
            state.quarantined.insert(shard);
        }
        tag => {
            return Err(CodecError::InvalidTag {
                what: "manifest record",
                tag: tag as u64,
            })
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("codesign_shard_manifest_tests")
            .join(format!(
                "{name}_{}_{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn manifest_replay_restores_done_and_quarantined() {
        let dir = temp_dir("replay");
        let plan = PlanRecord {
            fingerprint: 0xfeed_beef,
            shards: 4,
            cells: 12,
        };
        {
            let (mut m, state) = Manifest::open(&dir).unwrap();
            assert!(state.plan.is_none());
            m.record_plan(plan).unwrap();
            m.record_claim(0, 0, 111).unwrap();
            m.record_done(0, 0).unwrap();
            m.record_claim(1, 0, 222).unwrap();
            m.record_failed(1, 0, "worker exited with signal 9")
                .unwrap();
            m.record_claim(1, 1, 333).unwrap();
            m.record_failed(1, 1, "lease expired").unwrap();
            m.record_quarantined(1, 2).unwrap();
            m.record_claim(2, 0, 444).unwrap();
            m.record_done(2, 0).unwrap();
        }
        let (_m, state) = Manifest::open(&dir).unwrap();
        assert_eq!(state.plan, Some(plan));
        assert_eq!(state.done, BTreeSet::from([0, 2]));
        assert_eq!(state.quarantined, BTreeSet::from([1]));
        assert_eq!(state.failures, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn second_supervisor_on_same_dir_is_locked_out() {
        let dir = temp_dir("locked");
        let (_first, _) = Manifest::open(&dir).unwrap();
        match Manifest::open(&dir) {
            Err(ShardError::Log(codesign_store::LogError::Locked { .. })) => {}
            other => panic!("expected Locked, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
