//! The supervisor: spawn, lease, reclaim, retry, quarantine, merge.
//!
//! [`run`] executes the full co-design flow with its SCD stage fanned
//! out across worker *processes* (not threads): the supervisor runs
//! the coarse stage itself, writes the [`SweepSpec`], and then drives
//! a simple state machine over the shards —
//!
//! ```text
//! pending ──spawn──▶ running ──exit 0 + segment verified──▶ done
//!    ▲                  │
//!    │   nonzero exit / signal / lease expired (attempt += 1)
//!    └──────────────────┤
//!                       └── attempts > max_retries ──▶ quarantined
//! ```
//!
//! Liveness is lease-based: a running worker must bump its heartbeat
//! file at least once per lease period or the supervisor `SIGKILL`s it
//! and reclaims the shard. Exit status is *not* trusted on its own —
//! a worker that exits 0 with an incomplete segment (torn tail ate its
//! last cells) is treated as a failure and retried.
//!
//! When every shard is done, segments are merged in canonical cell
//! order and the flow's own merge/finalize recipe reproduces the
//! in-process [`FlowOutput`] byte for byte — see
//! [`canonical_output_bytes`](crate::canonical_output_bytes) for what
//! "byte for byte" means. A run with quarantined shards returns
//! [`ShardError::Quarantined`] instead of a silently-partial output.

use codesign_core::checkpoint::config_fingerprint;
use codesign_core::evaluate::EvalMethod;
use codesign_core::flow::{DesignOutcome, FlowConfig, FlowError, FlowOutput};
use codesign_core::observe::CancelState;
use codesign_core::{
    coarse_evaluate_parallel, select_bundles, AccuracyModel, BundleEvaluation, CancelToken,
    Candidate,
};
use codesign_dnn::bundle::enumerate_bundles;
use codesign_dnn::DnnBuilder;
use codesign_faults::SPEC_ENV;
use codesign_hls::cache::EstimateCache;
use codesign_hls::codegen::CodeGenerator;
use codesign_sim::pipeline::{simulate, AccelConfig};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use crate::manifest::{Manifest, PlanRecord};
use crate::segment::{read_segment, segment_path};
use crate::spec::SweepSpec;
use crate::worker::{heartbeat_path, ATTEMPT_ENV, DIR_ENV, INDEX_ENV, WORKER_ENV};
use crate::ShardError;

/// How the sharded run is laid out and supervised.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Directory holding spec, manifest, segments, and heartbeats.
    /// Created if absent; reusing a directory resumes its finished
    /// shards (same config required).
    pub dir: PathBuf,
    /// The flow configuration (its `parallelism` only affects the
    /// supervisor's own coarse stage; workers are single-threaded).
    pub flow: FlowConfig,
    /// Maximum worker processes alive at once (minimum 1).
    pub workers: usize,
    /// Number of shards to partition the grid into; `0` picks
    /// `2 × workers`, clamped to the cell count.
    pub shards: usize,
    /// Failed attempts a shard may accumulate beyond its first before
    /// being quarantined (`max_retries = 2` allows 3 attempts total).
    pub max_retries: u32,
    /// Heartbeat lease: a worker silent for this long is presumed hung
    /// and killed.
    pub lease: Duration,
    /// The worker binary — normally the supervisor's own executable.
    /// Tests pass `env!("CARGO_BIN_EXE_codesign-shard")`.
    pub worker_exe: PathBuf,
    /// Fault-plan spec to place in each worker's environment (see
    /// `codesign-faults`); `None` scrubs any inherited spec so chaos
    /// never leaks into workers by accident.
    pub fault_spec: Option<String>,
}

impl ShardConfig {
    /// A config with conservative supervision defaults: 2 workers,
    /// auto shard count, 2 retries, 30-second lease, this process's
    /// own executable as the worker.
    ///
    /// # Errors
    ///
    /// [`ShardError::Io`] when the current executable cannot be
    /// resolved.
    pub fn new(dir: PathBuf, flow: FlowConfig) -> Result<Self, ShardError> {
        Ok(Self {
            dir,
            flow,
            workers: 2,
            shards: 0,
            max_retries: 2,
            lease: Duration::from_secs(30),
            worker_exe: std::env::current_exe()?,
            fault_spec: None,
        })
    }
}

/// What the supervision layer did, alongside the merged output.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardReport {
    /// Shards the grid was partitioned into.
    pub shards: usize,
    /// Total grid cells.
    pub cells: usize,
    /// Shards reused from a previous run's segments (verified, not
    /// recomputed).
    pub reused_shards: usize,
    /// Failed attempts that were retried.
    pub retries: u32,
    /// Leases reclaimed from silent workers (SIGKILL + reassign).
    pub lease_reclaims: u32,
}

struct Running {
    shard: usize,
    attempt: u32,
    child: Child,
    heartbeat: Option<Vec<u8>>,
    deadline: Instant,
}

/// Runs the sharded search to completion. Equivalent to
/// [`run_with_cancel`] with a token that never fires.
///
/// # Errors
///
/// See [`run_with_cancel`].
pub fn run(config: &ShardConfig) -> Result<(FlowOutput, ShardReport), ShardError> {
    run_with_cancel(config, &CancelToken::new())
}

/// Runs the sharded search to completion, checking `cancel` between
/// supervision steps (a fired token kills every worker and returns
/// [`ShardError::Cancelled`]).
///
/// # Errors
///
/// [`ShardError::Quarantined`] when any shard exhausted its retry
/// budget; [`ShardError::Spec`] when the directory holds a different
/// run's plan; plus I/O, log, and flow failures.
pub fn run_with_cancel(
    config: &ShardConfig,
    cancel: &CancelToken,
) -> Result<(FlowOutput, ShardReport), ShardError> {
    config.flow.validate()?;
    std::fs::create_dir_all(&config.dir)?;
    let cfg = &config.flow;
    let model = AccuracyModel::paper_calibrated();

    // The coarse stage runs in-process: it is cheap, fully
    // deterministic, and its output (the Bundle selection) is an input
    // to the sharding plan itself.
    let all_bundles = enumerate_bundles();
    let coarse = coarse_evaluate_parallel(
        &all_bundles,
        &cfg.device,
        &cfg.coarse_pf_sweep,
        EvalMethod::Replicated {
            n: cfg.eval_replications,
        },
        &model,
        cfg.clock_mhz,
        cfg.parallelism.threads(),
    )
    .map_err(|e| ShardError::Flow(FlowError::Sim(e)))?;
    let max_pf = cfg.coarse_pf_sweep.iter().copied().max().unwrap_or(16);
    let at_max_pf: Vec<BundleEvaluation> = coarse
        .iter()
        .filter(|e| e.parallel_factor == max_pf)
        .cloned()
        .collect();
    let selected = select_bundles(&at_max_pf);

    let workers = config.workers.max(1);
    let cell_count = cfg.targets_fps.len() * selected.len() * crate::spec::ARMS.len();
    let shards = match config.shards {
        0 => (2 * workers).clamp(1, cell_count.max(1)),
        n => n.clamp(1, cell_count.max(1)),
    };
    let spec = SweepSpec {
        config: cfg.clone(),
        selected: selected.clone(),
        shards,
    };
    spec.write(&config.dir)?;
    let cells = spec.cells();

    // Manifest: open (exclusive — a second supervisor is locked out),
    // replay, and either verify or record the plan.
    let (mut manifest, state) = Manifest::open(&config.dir)?;
    let plan = PlanRecord {
        fingerprint: config_fingerprint(cfg),
        shards,
        cells: cells.len(),
    };
    match state.plan {
        None => manifest.record_plan(plan)?,
        Some(existing) if existing == plan => {}
        Some(existing) => {
            return Err(ShardError::Spec(format!(
                "shard directory holds a different run's plan \
                 (found {existing:?}, this run is {plan:?}) — use a fresh directory"
            )));
        }
    }

    // Re-verify previously-Done shards against their segments; a
    // recorded Done whose segment lost cells (tampering, partial copy)
    // is demoted and recomputed rather than trusted.
    let mut done: BTreeSet<usize> = BTreeSet::new();
    for &shard in &state.done {
        if shard >= shards {
            continue;
        }
        let covered = read_segment(&segment_path(&config.dir, shard))?;
        if spec.shard_cells(shard).all(|i| covered.contains_key(&i)) {
            done.insert(shard);
        }
    }
    let mut report = ShardReport {
        shards,
        cells: cells.len(),
        reused_shards: done.len(),
        retries: 0,
        lease_reclaims: 0,
    };

    let mut pending: VecDeque<usize> = (0..shards).filter(|s| !done.contains(s)).collect();
    let mut attempts: Vec<u32> = vec![0; shards];
    let mut quarantined: BTreeSet<usize> = BTreeSet::new();
    let mut running: Vec<Running> = Vec::new();

    let kill_all = |running: &mut Vec<Running>| {
        for r in running.iter_mut() {
            let _ = r.child.kill();
            let _ = r.child.wait();
        }
        running.clear();
    };

    let result: Result<(), ShardError> = loop {
        if done.len() + quarantined.len() == shards {
            break Ok(());
        }
        if cancel.state() != CancelState::Live {
            break Err(ShardError::Cancelled);
        }

        // Spawn up to the worker budget.
        while running.len() < workers {
            let Some(shard) = pending.pop_front() else {
                break;
            };
            let attempt = attempts[shard];
            let mut cmd = Command::new(&config.worker_exe);
            cmd.env(WORKER_ENV, "1")
                .env(DIR_ENV, &config.dir)
                .env(INDEX_ENV, shard.to_string())
                .env(ATTEMPT_ENV, attempt.to_string())
                .stdin(Stdio::null())
                .stdout(Stdio::null())
                .stderr(Stdio::inherit());
            match &config.fault_spec {
                Some(s) => cmd.env(SPEC_ENV, s),
                None => cmd.env_remove(SPEC_ENV),
            };
            let child = cmd.spawn()?;
            manifest.record_claim(shard, attempt, child.id())?;
            running.push(Running {
                shard,
                attempt,
                child,
                heartbeat: None,
                deadline: Instant::now() + config.lease,
            });
        }

        // Poll: exits first, then leases.
        let mut failed: Vec<(usize, String)> = Vec::new();
        let mut finished: Vec<usize> = Vec::new();
        for (idx, r) in running.iter_mut().enumerate() {
            if let Some(status) = r.child.try_wait()? {
                if status.success() {
                    let covered = read_segment(&segment_path(&config.dir, r.shard))?;
                    if spec.shard_cells(r.shard).all(|i| covered.contains_key(&i)) {
                        manifest.record_done(r.shard, r.attempt)?;
                        done.insert(r.shard);
                        finished.push(idx);
                    } else {
                        failed.push((idx, "exited 0 with incomplete segment".to_string()));
                    }
                } else {
                    failed.push((idx, format!("worker {status}")));
                }
                continue;
            }
            // Still running: lease bookkeeping off the heartbeat file.
            let beat = std::fs::read(heartbeat_path(&config.dir, r.shard)).ok();
            if beat.is_some() && beat != r.heartbeat {
                r.heartbeat = beat;
                r.deadline = Instant::now() + config.lease;
            } else if Instant::now() > r.deadline {
                let _ = r.child.kill();
                let _ = r.child.wait();
                report.lease_reclaims += 1;
                failed.push((idx, "lease expired (no heartbeat)".to_string()));
            }
        }

        // Remove finished/failed entries back-to-front so indices stay
        // valid, recording failures against the manifest.
        let mut remove: Vec<(usize, Option<String>)> = finished
            .into_iter()
            .map(|i| (i, None))
            .chain(failed.into_iter().map(|(i, reason)| (i, Some(reason))))
            .collect();
        remove.sort_by_key(|(i, _)| std::cmp::Reverse(*i));
        for (idx, reason) in remove {
            let r = running.swap_remove(idx);
            let Some(reason) = reason else {
                continue;
            };
            manifest.record_failed(r.shard, r.attempt, &reason)?;
            attempts[r.shard] += 1;
            if attempts[r.shard] > config.max_retries {
                manifest.record_quarantined(r.shard, attempts[r.shard])?;
                quarantined.insert(r.shard);
            } else {
                report.retries += 1;
                pending.push_back(r.shard);
            }
        }

        std::thread::sleep(Duration::from_millis(15));
    };

    kill_all(&mut running);
    result?;
    if !quarantined.is_empty() {
        return Err(ShardError::Quarantined {
            shards: quarantined.into_iter().collect(),
        });
    }

    // Merge: segments in canonical shard order, keyed by global cell
    // index. Workers are reaped, so segment locks are stale at worst.
    let mut by_cell: BTreeMap<usize, Vec<Candidate>> = BTreeMap::new();
    for shard in 0..shards {
        by_cell.append(&mut read_segment(&segment_path(&config.dir, shard))?);
    }
    let missing: Vec<usize> = (0..cells.len())
        .filter(|i| !by_cell.contains_key(i))
        .collect();
    if !missing.is_empty() {
        return Err(ShardError::IncompleteMerge { missing });
    }
    let found: Vec<Vec<Candidate>> = (0..cells.len())
        .map(|i| by_cell.remove(&i).unwrap())
        .collect();

    // From here on this is the flow's own merge + finalize recipe,
    // reproduced over (cells, found) instead of (items, found).
    let mut candidates: Vec<(f64, Candidate)> = Vec::new();
    let mut best_per_target: Vec<(f64, Candidate)> = Vec::new();
    for (ti, &fps) in cfg.targets_fps.iter().enumerate() {
        let target_candidates: Vec<Candidate> = cells
            .iter()
            .zip(&found)
            .filter(|(cell, _)| cell.ti == ti)
            .flat_map(|(_, cs)| cs.iter().cloned())
            .collect();
        if let Some(best) = target_candidates
            .iter()
            .max_by(|a, b| a.accuracy.total_cmp(&b.accuracy))
            .cloned()
        {
            best_per_target.push((fps, best));
        }
        candidates.extend(target_candidates.into_iter().map(|c| (fps, c)));
    }
    let mut designs: Vec<DesignOutcome> = Vec::new();
    for (fps, best) in &best_per_target {
        if cancel.state() != CancelState::Live {
            return Err(ShardError::Cancelled);
        }
        designs.push(finalize(cfg, *fps, best)?);
    }

    let output = FlowOutput {
        coarse,
        selected_bundles: selected,
        candidates,
        designs,
        // Worker caches died with their processes; the merged output
        // carries zeroed stats, consistent with "cache stats describe
        // the run, not the answer".
        cache_stats: EstimateCache::new().stats(),
    };
    Ok((output, report))
}

/// The flow's finalization step (full simulation + Auto-HLS codegen),
/// reproduced verbatim so the merged designs match the in-process
/// flow's bit for bit. Measured quantization is a flow-only option and
/// stays `None` here.
fn finalize(
    cfg: &FlowConfig,
    target_fps: f64,
    candidate: &Candidate,
) -> Result<DesignOutcome, ShardError> {
    let dnn = DnnBuilder::new()
        .build(&candidate.point)
        .expect("search candidates elaborate");
    let accel = AccelConfig::for_point(&candidate.point);
    let report =
        simulate(&dnn, &accel, &cfg.device).map_err(|e| ShardError::Flow(FlowError::Sim(e)))?;
    let code = CodeGenerator::new(accel).generate(&dnn);
    let latency_ms = report.latency_ms(cfg.clock_mhz);
    Ok(DesignOutcome {
        target_fps,
        point: candidate.point.clone(),
        accuracy: candidate.accuracy,
        latency_ms,
        fps: 1000.0 / latency_ms,
        report,
        code,
        dnn,
        measured_iou: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_resolves_current_exe() {
        let cfg = ShardConfig::new(
            std::env::temp_dir().join("codesign_shard_cfg"),
            FlowConfig::for_device(codesign_sim::device::pynq_z1()),
        )
        .unwrap();
        assert!(!cfg.worker_exe.as_os_str().is_empty());
        assert_eq!(cfg.shards, 0);
        assert_eq!(cfg.max_retries, 2);
    }

    #[test]
    fn spawn_failure_surfaces_as_io_error() {
        let dir =
            std::env::temp_dir().join(format!("codesign_shard_badexe_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = ShardConfig::new(
            dir.clone(),
            FlowConfig {
                targets_fps: vec![15.0],
                candidates_per_bundle: 2,
                coarse_pf_sweep: vec![16],
                ..FlowConfig::for_device(codesign_sim::device::pynq_z1())
            },
        )
        .unwrap();
        cfg.worker_exe = PathBuf::from("/nonexistent/worker/binary");
        match run(&cfg) {
            Err(ShardError::Io(_)) => {}
            other => panic!("expected Io error, got {:?}", other.map(|(_, r)| r)),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
