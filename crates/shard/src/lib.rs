//! Crash-tolerant multi-process sharded co-design search.
//!
//! The DAC'19 flow's SCD stage is a pure grid: one independent search
//! per `(FPS target, selected Bundle, quantization arm)` cell, each
//! seeded from what the cell *is* rather than when it runs. That makes
//! it safe to split across OS processes — and this crate does exactly
//! that, with the supervision needed to survive the processes dying:
//!
//! * [`supervisor`] — partitions the grid into shards, spawns worker
//!   processes (re-execs of this crate's own binary), hands out shards
//!   under heartbeat leases, reclaims leases from crashed or hung
//!   workers, retries with a bounded budget, and quarantines shards
//!   that keep failing instead of retrying forever.
//! * [`worker`] — the child-process side: reads the [`spec`], computes
//!   its cell range, appends results to its own [`segment`] log, and
//!   resumes mid-shard after a crash by replaying what the torn-tail
//!   recovery of its segment preserved.
//! * [`manifest`] — the supervisor's checksummed record of claims,
//!   completions, failures, and quarantines; replayed on restart so a
//!   new supervisor run reuses finished shards.
//! * [`output`] — a canonical byte serialization of the final
//!   [`FlowOutput`](codesign_core::FlowOutput), the artifact the
//!   determinism pins compare.
//!
//! The contract, enforced by this crate's tests: the merged output is
//! **byte-identical** across one process, N processes, and N processes
//! with workers killed mid-append — crashes cost wall-clock, never
//! bits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use codesign_core::flow::FlowError;
use codesign_store::{CodecError, LogError};
use std::fmt;
use std::io;

pub mod manifest;
pub mod output;
pub mod segment;
pub mod spec;
pub mod supervisor;
pub mod worker;

pub use manifest::{Manifest, ManifestState, PlanRecord};
pub use output::canonical_output_bytes;
pub use segment::{read_segment, segment_path};
pub use spec::{shard_range, Cell, SweepSpec};
pub use supervisor::{run, run_with_cancel, ShardConfig, ShardReport};
pub use worker::maybe_run_worker;

/// Everything the sharded search can fail with.
#[derive(Debug)]
#[non_exhaustive]
pub enum ShardError {
    /// An I/O operation failed.
    Io(io::Error),
    /// A record log failed to open or append (including a second
    /// supervisor being locked out of the manifest).
    Log(LogError),
    /// Stored bytes did not decode.
    Codec(CodecError),
    /// The coarse stage or merge-side finalization failed.
    Flow(FlowError),
    /// The sweep spec was missing, corrupt, or pinned a different
    /// configuration than this run's.
    Spec(String),
    /// One or more shards exhausted their retry budget and were
    /// quarantined; their cells are missing from the output.
    Quarantined {
        /// The quarantined shard indices, ascending.
        shards: Vec<usize>,
    },
    /// The merge found cells no completed segment covered (a bug or a
    /// tampered shard directory, never an expected outcome).
    IncompleteMerge {
        /// Global indices of the uncovered cells, ascending.
        missing: Vec<usize>,
    },
    /// The run was cancelled through its [`CancelToken`](codesign_core::CancelToken).
    Cancelled,
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Io(e) => write!(f, "shard i/o error: {e}"),
            ShardError::Log(e) => write!(f, "shard log error: {e}"),
            ShardError::Codec(e) => write!(f, "shard decode error: {e}"),
            ShardError::Flow(e) => write!(f, "shard flow error: {e}"),
            ShardError::Spec(reason) => write!(f, "sweep spec error: {reason}"),
            ShardError::Quarantined { shards } => {
                write!(
                    f,
                    "{} shard(s) quarantined after retries: {shards:?}",
                    shards.len()
                )
            }
            ShardError::IncompleteMerge { missing } => {
                write!(f, "merge missing {} cell(s): {missing:?}", missing.len())
            }
            ShardError::Cancelled => write!(f, "sharded search cancelled"),
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::Io(e) => Some(e),
            ShardError::Log(e) => Some(e),
            ShardError::Codec(e) => Some(e),
            ShardError::Flow(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ShardError {
    fn from(e: io::Error) -> Self {
        ShardError::Io(e)
    }
}

impl From<LogError> for ShardError {
    fn from(e: LogError) -> Self {
        ShardError::Log(e)
    }
}

impl From<CodecError> for ShardError {
    fn from(e: CodecError) -> Self {
        ShardError::Codec(e)
    }
}

impl From<FlowError> for ShardError {
    fn from(e: FlowError) -> Self {
        ShardError::Flow(e)
    }
}
