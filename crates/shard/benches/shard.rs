//! Sharded-search bench: the same sweep at 1 worker, 4 workers, and 4
//! workers with an injected mid-append crash.
//!
//! Three contracts are measured (and one asserted): shards/s scaling
//! from process fan-out, the wall-clock overhead of recovering a
//! crashed worker, and — before any number is reported — that all
//! three runs produced byte-identical canonical output. Emits
//! `BENCH_shard.json` via `codesign_bench::perf`.

use codesign_bench::{emit_bench_json, BenchRecord};
use codesign_core::flow::FlowConfig;
use codesign_shard::canonical_output_bytes;
use codesign_shard::supervisor::{run, ShardConfig};
use codesign_sim::device::pynq_z1;
use criterion::{criterion_group, criterion_main, Criterion};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn flow_config() -> FlowConfig {
    FlowConfig {
        targets_fps: vec![10.0, 15.0],
        candidates_per_bundle: 2,
        coarse_pf_sweep: vec![16],
        ..FlowConfig::for_device(pynq_z1())
    }
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("codesign_bench_shard")
        .join(format!("{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn shard_config(name: &str, workers: usize, fault_spec: Option<&str>) -> ShardConfig {
    ShardConfig {
        dir: temp_dir(name),
        flow: flow_config(),
        workers,
        shards: 4,
        max_retries: 2,
        lease: Duration::from_secs(60),
        worker_exe: PathBuf::from(env!("CARGO_BIN_EXE_codesign-shard")),
        fault_spec: fault_spec.map(str::to_string),
    }
}

fn timed(config: &ShardConfig) -> (Vec<u8>, Duration, u32) {
    let t0 = Instant::now();
    let (output, report) = run(config).expect("sharded run");
    (
        canonical_output_bytes(&output),
        t0.elapsed(),
        report.retries,
    )
}

fn bench_shard(_c: &mut Criterion) {
    let (bytes_1, wall_1, _) = timed(&shard_config("w1", 1, None));
    let (bytes_4, wall_4, _) = timed(&shard_config("w4", 4, None));
    let (bytes_crash, wall_crash, retries) = timed(&shard_config(
        "w4_crash",
        4,
        Some("seed=7;shard.worker.crash=panic@1"),
    ));

    // The headline guarantee, asserted before any number is believed.
    assert_eq!(bytes_1, bytes_4, "1-worker vs 4-worker output differs");
    assert_eq!(bytes_1, bytes_crash, "crash-recovery output differs");
    assert!(retries >= 1, "the injected crash must force a retry");

    let shards_per_sec = |wall: Duration| 4.0 / wall.as_secs_f64();
    println!(
        "shard: 1 worker {:.1} ms, 4 workers {:.1} ms, 4 workers + crash {:.1} ms",
        wall_1.as_secs_f64() * 1e3,
        wall_4.as_secs_f64() * 1e3,
        wall_crash.as_secs_f64() * 1e3,
    );

    let records = [
        BenchRecord::timing("workers_1", wall_1)
            .with_metric("shards_per_sec", shards_per_sec(wall_1)),
        BenchRecord::speedup_over("workers_4", wall_4, wall_1)
            .with_metric("shards_per_sec", shards_per_sec(wall_4)),
        BenchRecord::speedup_over("workers_4_crash_recovery", wall_crash, wall_4).with_metric(
            "recovery_overhead_ms",
            (wall_crash.saturating_sub(wall_4)).as_secs_f64() * 1e3,
        ),
    ];
    let path = emit_bench_json("shard", &records).expect("emit BENCH_shard.json");
    println!("shard: wrote {}", path.display());
}

criterion_group!(benches, bench_shard);
criterion_main!(benches);
