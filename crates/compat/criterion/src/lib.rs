//! Offline stand-in for `criterion`.
//!
//! The container image has no registry access, so this crate provides the
//! subset of the criterion 0.5 API the workspace benches use:
//! [`Criterion::benchmark_group`] / `bench_function`, per-group
//! `sample_size`, [`Bencher::iter`], and the `criterion_group!` /
//! `criterion_main!` macros. It measures wall-clock medians and prints
//! one line per benchmark — no statistics engine, plots, or HTML
//! reports. Swapping back to crates.io criterion is a one-line change in
//! the workspace manifest.

#![forbid(unsafe_code)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` (criterion's own is deprecated in
/// favor of the std one, but callers may still import it from here).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver (mirrors `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_benchmark(&full, self.sample_size, f);
        self
    }

    /// Finishes the group (reporting is per-benchmark, so this is a no-op).
    pub fn finish(self) {}
}

/// Timer handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Times `routine`, collecting the configured number of samples.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // One untimed warm-up run.
        std_black_box(routine());
        for _ in 0..self.target_samples {
            let start = Instant::now();
            std_black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F>(name: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples: Vec::new(),
        target_samples: sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("bench {name}: no samples collected");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let best = b.samples[0];
    println!(
        "bench {name}: median {median:?}, best {best:?} ({} samples)",
        b.samples.len()
    );
}

/// Declares a benchmark group function (mirrors `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` (mirrors `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
