//! Offline stand-in for `rand` 0.9.
//!
//! The container image has no registry access, so this crate provides the
//! subset of the rand 0.9 API the workspace actually uses: `rngs::StdRng`
//! seeded with `SeedableRng::seed_from_u64`, and the `Rng` extension
//! methods `random_range` (half-open and inclusive integer / float
//! ranges) and `random_bool`. The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic for a given seed, which is all the
//! workspace relies on (reproducible search, dataset generation and
//! weight init). Swapping back to crates.io rand is a one-line change in
//! the workspace manifest.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random `u64`s (mirrors `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (mirrors `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing extension methods (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "random_bool: p out of [0, 1]");
        unit_f64(self.next_u64()) < p
    }

    /// Samples a value of a supported primitive type over its full range
    /// (`bool`, floats in `[0, 1)`).
    fn random<T>(&mut self) -> T
    where
        T: Random,
    {
        T::random(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::random`].
pub trait Random: Sized {
    /// Draws one value from `rng`.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f32(rng.next_u64())
    }
}

/// Ranges that [`Rng::random_range`] can sample from (mirrors
/// `rand::distr::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → [0, 1) with full double precision.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn unit_f32(bits: u64) -> f32 {
    (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

/// Unbiased-enough integer sampling in `[0, span)` via 128-bit widening
/// multiply (Lemire's method without the rejection loop; bias is < 2^-64
/// per draw, irrelevant for simulation workloads).
fn index(bits: u64, span: u64) -> u64 {
    ((bits as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(index(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "random_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(index(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty => $unit:ident),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                self.start + $unit(rng.next_u64()) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "random_range: empty range");
                lo + $unit(rng.next_u64()) * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32 => unit_f32, f64 => unit_f64);

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0usize..1_000_000),
                b.random_range(0usize..1_000_000)
            );
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.random_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.random_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "got {hits}");
    }
}
