//! Offline stand-in for `serde_derive`.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as a
//! forward-compatible annotation — nothing in the tree serializes through
//! serde's data model yet (the container image has no registry access, so
//! the real crate cannot be fetched). These derives therefore accept the
//! same attribute grammar but emit no code; swapping the `[patch]`-style
//! path dependency back to crates.io serde is a one-line change in the
//! workspace manifest once the registry is reachable.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
