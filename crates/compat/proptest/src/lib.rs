//! Offline stand-in for `proptest`.
//!
//! The container image has no registry access, so this crate reimplements
//! the subset of proptest the workspace tests use: the [`proptest!`]
//! macro (including `#![proptest_config(...)]`), `prop_assert!` /
//! `prop_assert_eq!`, range strategies over integers and floats, and
//! `prop::collection::vec`. Cases are generated from a deterministic
//! SplitMix64 stream keyed by the test name, so failures reproduce
//! run-to-run. No shrinking is performed — a failing case reports its
//! arguments instead. Swapping back to crates.io proptest is a one-line
//! change in the workspace manifest.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value from `rng`.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategy that always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }

    impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + (rng.unit() as $t) * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    lo + (rng.unit() as $t) * (hi - lo)
                }
            }
        )*};
    }

    impl_float_strategy!(f32, f64);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is drawn uniformly from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.start < self.len.end, "empty length range");
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Case-count configuration, failure type, and the deterministic RNG.

    /// Number of cases each property runs (mirrors
    /// `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// How many random cases to execute.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the heavier
            // simulation properties fast while still sweeping the space.
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property case (carries the rendered assertion message).
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Builds a failure from a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic SplitMix64 stream keyed per test.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a stream from a key (test name hash + case index).
        pub fn new(key: u64) -> Self {
            TestRng {
                state: key ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next raw `u64`.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform integer in `[0, span)` (`span > 0`).
        pub fn below(&mut self, span: u64) -> u64 {
            ((self.next_u64() as u128 * span as u128) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// FNV-1a hash used to key the per-test RNG stream.
    pub fn fnv1a(name: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let key = $crate::test_runner::fnv1a(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases as u64 {
                    let mut rng = $crate::test_runner::TestRng::new(
                        key.wrapping_add(case.wrapping_mul(0x2545_F491_4F6C_DD1D)),
                    );
                    $(
                        let sampled = $crate::strategy::Strategy::sample(&($strat), &mut rng);
                        let $arg = sampled;
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {} of {} failed for `{}`: {}",
                            case + 1, config.cases, stringify!($name), e,
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that fails the current property case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` that fails the current property case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r,
        );
    }};
}

/// `assert_ne!` that fails the current property case instead of panicking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_stay_in_bounds(a in 3usize..10, b in -5i32..=5, x in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((-5..=5).contains(&b));
            prop_assert!((0.25..0.75).contains(&x));
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0.0f64..1.0, 2..15)) {
            prop_assert!((2..15).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_reports_case() {
        proptest! {
            fn inner(x in 0usize..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        inner();
    }
}
