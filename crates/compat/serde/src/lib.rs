//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize` / `Deserialize` names (trait + derive macro)
//! that the workspace imports, without implementing serde's data model.
//! The container image has no registry access, so the real crate cannot
//! be fetched; the derives emit no code and the traits carry no methods.
//! Replacing this with crates.io serde is a one-line swap of the path
//! dependency in the workspace `Cargo.toml`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no data model here).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no data model here).
pub trait Deserialize<'de>: Sized {}
