//! Bottom-up DNN construction from a design point.
//!
//! The builder elaborates a [`DesignPoint`] into a concrete [`Dnn`]
//! following the Bundle-Arch template (paper Fig. 2): a stem convolution
//! brings the 3-channel input image to the base width, the Bundle is
//! replicated `N` times with channel expansion applied at each
//! replication's entry and 2x2 down-sampling at the reserved spots
//! between replications, and a detection head (conv 1x1 to 4 box
//! coordinates + global average pooling) closes the model — the
//! single-object bounding-box task of the DAC-SDC competition.

use crate::dnn::{Dnn, LayerInstance};
use crate::error::DnnError;
use crate::layer::{LayerOp, TensorShape};
use crate::space::DesignPoint;

/// Default network input: native DAC-SDC 640x360 frames (`3 x 360 x
/// 640` in CHW).
pub const DEFAULT_INPUT: TensorShape = TensorShape {
    c: 3,
    h: 360,
    w: 640,
};

/// Number of detection outputs: normalized `(cx, cy, w, h)` of the
/// single object box.
pub const BOX_OUTPUTS: usize = 4;

/// Builds concrete [`Dnn`] models from [`DesignPoint`]s.
///
/// # Example
///
/// ```
/// use codesign_dnn::{bundle, builder::DnnBuilder, space::DesignPoint, TensorShape};
///
/// # fn main() -> Result<(), codesign_dnn::DnnError> {
/// let b = bundle::enumerate_bundles()[12].clone(); // Bundle 13
/// let dnn = DnnBuilder::new()
///     .input(TensorShape::new(3, 96, 192))
///     .build(&DesignPoint::initial(b, 4))?;
/// assert_eq!(dnn.output_shape().c, 4); // (cx, cy, w, h)
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DnnBuilder {
    input: TensorShape,
    stem_kernel: usize,
    method1_body: bool,
}

impl Default for DnnBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl DnnBuilder {
    /// Creates a builder with the DAC-SDC default input (3x160x320).
    pub fn new() -> Self {
        Self {
            input: DEFAULT_INPUT,
            stem_kernel: 3,
            method1_body: false,
        }
    }

    /// Sets the input image shape.
    pub fn input(mut self, input: TensorShape) -> Self {
        self.input = input;
        self
    }

    /// Switches to *method#1* DNN construction from the coarse-grained
    /// Bundle evaluation (Sec. 5.1.1): a fixed head and tail with a
    /// single Bundle replication in the middle. The design point's `N`,
    /// `X` and `Π` vectors are ignored except for the first entry.
    ///
    /// The default is *method#2*: the Bundle replicated `N` times.
    pub fn method1(mut self, enabled: bool) -> Self {
        self.method1_body = enabled;
        self
    }

    /// A stable fingerprint of the builder configuration (input shape,
    /// stem kernel, construction method), FNV-1a folded. Estimate
    /// caches salt their keys with it so estimators configured for
    /// different input resolutions or construction methods never share
    /// entries.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for v in [
            self.input.c as u64,
            self.input.h as u64,
            self.input.w as u64,
            self.stem_kernel as u64,
            self.method1_body as u64,
        ] {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        h
    }

    /// Number of Bundle replications the builder's construction method
    /// elaborates for `point`: the point's `N` under *method#2*, a
    /// single replication under *method#1*.
    pub fn body_replications(&self, point: &DesignPoint) -> usize {
        if self.method1_body {
            1
        } else {
            point.replications()
        }
    }

    /// Whether a 2x2 down-sampling layer closes replication `rep`:
    /// the point's `X` vector under *method#2*, between-replication
    /// spots under *method#1*.
    pub fn downsample_at(&self, point: &DesignPoint, rep: usize) -> bool {
        if self.method1_body {
            rep + 1 < self.body_replications(point)
        } else {
            point.downsampling().get(rep).copied().unwrap_or(false)
        }
    }

    /// Elaborates the stem segment — 3 input channels to the base width,
    /// with one fixed 2x2 down-sampling to shed the full-resolution
    /// compute (standard detector practice) — returning its layers and
    /// the shape entering the first Bundle replication.
    ///
    /// Together with [`replication`](Self::replication) and
    /// [`head`](Self::head) this exposes the exact per-segment
    /// elaboration that [`build`](Self::build) concatenates, so
    /// incremental consumers (the `codesign-hls` estimate plan) can
    /// re-elaborate only the segments a design-point move touched.
    /// Unlike `build`, the segment methods do **not** validate `point`.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] when the input is smaller
    /// than the stem kernel.
    pub fn stem(&self, point: &DesignPoint) -> Result<(Vec<LayerInstance>, TensorShape), DnnError> {
        let mut layers = Vec::new();
        let mut shape = self.input;
        shape = push(
            &mut layers,
            LayerOp::conv(self.stem_kernel, point.base_channels),
            shape,
            None,
        )?;
        shape = push(&mut layers, LayerOp::BatchNorm, shape, None)?;
        shape = push(
            &mut layers,
            LayerOp::activation(point.activation),
            shape,
            None,
        )?;
        shape = push(&mut layers, LayerOp::max_pool(2), shape, None)?;
        Ok((layers, shape))
    }

    /// Elaborates Bundle replication `rep` from the shape its
    /// predecessor produced, returning the replication's layers and its
    /// output shape. See [`stem`](Self::stem) for the segment contract.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] when down-sampling has shrunk
    /// the feature map below the Bundle's kernels.
    pub fn replication(
        &self,
        point: &DesignPoint,
        rep: usize,
        input: TensorShape,
    ) -> Result<(Vec<LayerInstance>, TensorShape), DnnError> {
        let mut layers = Vec::new();
        let mut shape = input;
        let width = point.channels_at(rep);
        for op in point.bundle.elaborate(width, point.activation) {
            shape = push(&mut layers, op, shape, Some(rep))?;
        }
        // Depth-wise-only bundles cannot widen channels themselves;
        // Bundle-Arch reserves channel-expansion spots between IPs,
        // realized as a pointwise conv when the width must change.
        if shape.c != width {
            shape = push(&mut layers, LayerOp::conv(1, width), shape, Some(rep))?;
            shape = push(
                &mut layers,
                LayerOp::activation(point.activation),
                shape,
                Some(rep),
            )?;
        }
        if self.downsample_at(point, rep) {
            shape = push(&mut layers, LayerOp::max_pool(2), shape, Some(rep))?;
        }
        Ok((layers, shape))
    }

    /// Elaborates the detection head — 1x1 conv to 4 box outputs plus
    /// global average pooling — from the final replication's output
    /// shape. See [`stem`](Self::stem) for the segment contract.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] for an empty input shape.
    pub fn head(&self, input: TensorShape) -> Result<Vec<LayerInstance>, DnnError> {
        let mut layers = Vec::new();
        let shape = push(&mut layers, LayerOp::conv(1, BOX_OUTPUTS), input, None)?;
        push(&mut layers, LayerOp::GlobalAvgPool, shape, None)?;
        Ok(layers)
    }

    /// Elaborates `point` into a concrete DNN.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidParameter`] when the point fails
    /// [`DesignPoint::validate`], and [`DnnError::ShapeMismatch`] when
    /// down-sampling shrinks feature maps below the Bundle's kernels.
    pub fn build(&self, point: &DesignPoint) -> Result<Dnn, DnnError> {
        point.validate()?;
        let (mut layers, mut shape) = self.stem(point)?;
        let reps = self.body_replications(point);
        for rep in 0..reps {
            let (rep_layers, out) = self.replication(point, rep, shape)?;
            layers.extend(rep_layers);
            shape = out;
        }
        layers.extend(self.head(shape)?);

        let name = format!(
            "{} x{} pf{} {}",
            point.bundle.id(),
            reps,
            point.parallel_factor,
            point.activation
        );
        Ok(Dnn::from_parts(
            name,
            self.input,
            point.quantization(),
            layers,
        ))
    }
}

fn push(
    layers: &mut Vec<LayerInstance>,
    op: LayerOp,
    input: TensorShape,
    bundle_rep: Option<usize>,
) -> Result<TensorShape, DnnError> {
    let output = op.output_shape(input)?;
    layers.push(LayerInstance {
        op,
        input,
        output,
        bundle_rep,
    });
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::{bundle_by_id, enumerate_bundles, BundleId};
    use crate::quant::Activation;
    use proptest::prelude::*;

    #[test]
    fn builds_all_18_bundles() {
        for b in enumerate_bundles() {
            let dnn = DnnBuilder::new()
                .build(&DesignPoint::initial(b.clone(), 3))
                .unwrap_or_else(|e| panic!("{b}: {e}"));
            assert!(dnn.total_macs() > 0, "{b}");
        }
    }

    #[test]
    fn output_is_box_vector() {
        let b = bundle_by_id(BundleId(13)).unwrap();
        let dnn = DnnBuilder::new()
            .build(&DesignPoint::initial(b, 4))
            .unwrap();
        assert_eq!(dnn.output_shape(), TensorShape::new(BOX_OUTPUTS, 1, 1));
    }

    #[test]
    fn method1_uses_single_replication() {
        let b = bundle_by_id(BundleId(1)).unwrap();
        let point = DesignPoint::initial(b, 4);
        let m1 = DnnBuilder::new().method1(true).build(&point).unwrap();
        let m2 = DnnBuilder::new().build(&point).unwrap();
        assert!(m1.layer_count() < m2.layer_count());
        let reps_in_m1: std::collections::HashSet<_> =
            m1.layers().iter().filter_map(|l| l.bundle_rep).collect();
        assert_eq!(reps_in_m1.len(), 1);
    }

    #[test]
    fn downsampling_shrinks_feature_maps() {
        let b = bundle_by_id(BundleId(1)).unwrap();
        let mut point = DesignPoint::initial(b, 3);
        point.downsample = vec![true, true, false];
        let dnn = DnnBuilder::new().build(&point).unwrap();
        // Input 360x640, stem pool /2 => 180x320, two more /2 => 45x80.
        let last_conv = dnn
            .layers()
            .iter()
            .rev()
            .find(|l| l.op.is_computational())
            .unwrap();
        assert_eq!((last_conv.input.h, last_conv.input.w), (45, 80));
    }

    #[test]
    fn dw_only_bundle_gets_expansion_conv() {
        // Bundle 4 is a bare dw-conv3x3: it cannot widen channels, so the
        // builder must insert pointwise convs at expansion spots.
        let b = bundle_by_id(BundleId(4)).unwrap();
        let mut point = DesignPoint::initial(b, 3);
        point.expansion = vec![1.0, 2.0, 2.0];
        let dnn = DnnBuilder::new().build(&point).unwrap();
        let has_pointwise = dnn
            .layers()
            .iter()
            .any(|l| matches!(l.op, LayerOp::Conv { k: 1, .. }) && l.bundle_rep.is_some());
        assert!(has_pointwise);
        assert!(dnn.max_channels() > point.base_channels);
    }

    #[test]
    fn segments_concatenate_to_build() {
        // The stem / replication / head segment methods are the exact
        // decomposition of build(); incremental estimation relies on it.
        for method1 in [false, true] {
            let builder = DnnBuilder::new().method1(method1);
            let b = bundle_by_id(BundleId(13)).unwrap();
            let point = DesignPoint::initial(b, 4);
            let dnn = builder.build(&point).unwrap();
            let (mut layers, mut shape) = builder.stem(&point).unwrap();
            for rep in 0..builder.body_replications(&point) {
                let (rep_layers, out) = builder.replication(&point, rep, shape).unwrap();
                layers.extend(rep_layers);
                shape = out;
            }
            layers.extend(builder.head(shape).unwrap());
            assert_eq!(dnn.layers(), &layers[..], "method1={method1}");
        }
    }

    #[test]
    fn too_much_downsampling_is_rejected() {
        let b = bundle_by_id(BundleId(3)).unwrap(); // conv5x5 needs >=5x5 maps
        let mut point = DesignPoint::initial(b, 8);
        point.downsample = vec![true; 8];
        point.expansion = vec![1.0; 8];
        let err = DnnBuilder::new()
            .input(TensorShape::new(3, 64, 64))
            .build(&point)
            .unwrap_err();
        assert!(matches!(err, DnnError::ShapeMismatch { .. }));
    }

    #[test]
    fn invalid_point_is_rejected() {
        let b = bundle_by_id(BundleId(1)).unwrap();
        let mut point = DesignPoint::initial(b, 3);
        point.parallel_factor = 7;
        assert!(DnnBuilder::new().build(&point).is_err());
    }

    #[test]
    fn quantization_follows_activation() {
        let b = bundle_by_id(BundleId(13)).unwrap();
        let mut point = DesignPoint::initial(b, 2);
        point.activation = Activation::Relu4;
        let dnn = DnnBuilder::new().build(&point).unwrap();
        assert_eq!(dnn.quantization(), crate::quant::Quantization::Int8);
    }

    #[test]
    fn more_replications_mean_more_macs() {
        let b = bundle_by_id(BundleId(13)).unwrap();
        let small = DnnBuilder::new()
            .build(&DesignPoint::initial(b.clone(), 2))
            .unwrap();
        let large = DnnBuilder::new()
            .build(&DesignPoint::initial(b, 5))
            .unwrap();
        assert!(large.total_macs() > small.total_macs());
        assert!(large.total_params() > small.total_params());
    }

    proptest! {
        #[test]
        fn prop_any_valid_point_builds(id in 1usize..=18, reps in 1usize..5,
                                       pf_idx in 0usize..3) {
            let b = bundle_by_id(BundleId(id)).unwrap();
            let mut point = DesignPoint::initial(b, reps);
            point.parallel_factor = crate::space::PARALLEL_FACTORS[pf_idx];
            let dnn = DnnBuilder::new().build(&point);
            prop_assert!(dnn.is_ok());
            let dnn = dnn.unwrap();
            prop_assert_eq!(dnn.output_shape().c, BOX_OUTPUTS);
            // Shapes chain between consecutive layers.
            for w in dnn.layers().windows(2) {
                prop_assert_eq!(w[0].output, w[1].input);
            }
        }

        #[test]
        fn prop_channels_never_exceed_cap(id in 1usize..=18, reps in 1usize..5) {
            let b = bundle_by_id(BundleId(id)).unwrap();
            let mut point = DesignPoint::initial(b, reps);
            point.max_channels = 128;
            let dnn = DnnBuilder::new().build(&point).unwrap();
            prop_assert!(dnn.max_channels() <= 128);
        }
    }
}
