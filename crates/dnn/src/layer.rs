//! DNN layer operators and shape algebra.
//!
//! Each operator corresponds to a configurable hardware IP template from
//! the paper's IP pool (Sec. 4.2): standard convolution 1x1 / 3x3 / 5x5,
//! depth-wise convolution 3x3 / 5x5 / 7x7, max / average pooling,
//! normalization and activation.

use crate::error::DnnError;
use crate::quant::Activation;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Shape of an activation tensor in `C x H x W` layout (one image).
///
/// # Example
///
/// ```
/// use codesign_dnn::TensorShape;
///
/// let s = TensorShape::new(32, 80, 160);
/// assert_eq!(s.elements(), 32 * 80 * 160);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TensorShape {
    /// Number of channels.
    pub c: usize,
    /// Spatial height.
    pub h: usize,
    /// Spatial width.
    pub w: usize,
}

impl TensorShape {
    /// Creates a shape from channels, height and width.
    pub fn new(c: usize, h: usize, w: usize) -> Self {
        Self { c, h, w }
    }

    /// Total number of elements (`c * h * w`).
    pub fn elements(&self) -> usize {
        self.c * self.h * self.w
    }

    /// Number of spatial positions (`h * w`).
    pub fn pixels(&self) -> usize {
        self.h * self.w
    }

    /// Returns this shape with a different channel count.
    pub fn with_channels(self, c: usize) -> Self {
        Self { c, ..self }
    }

    /// Returns this shape spatially down-sampled by `factor` in both
    /// dimensions (floor division, matching stride-`factor` pooling).
    pub fn downsampled(self, factor: usize) -> Self {
        Self {
            c: self.c,
            h: self.h / factor,
            w: self.w / factor,
        }
    }
}

impl fmt::Display for TensorShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.c, self.h, self.w)
    }
}

/// Pooling flavor for the pooling IP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    /// Maximum pooling.
    Max,
    /// Average pooling.
    Avg,
}

impl fmt::Display for PoolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolKind::Max => write!(f, "max"),
            PoolKind::Avg => write!(f, "avg"),
        }
    }
}

/// A DNN layer operator, i.e. one use of a hardware IP template.
///
/// Spatial operators use "same" padding (output spatial size equals input
/// spatial size) except pooling, which divides the spatial size by its
/// stride. This matches the Tile-Arch accelerator, which keeps a common
/// tile size across layers (Sec. 4.3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum LayerOp {
    /// Standard convolution with square kernel `k`, producing
    /// `out_channels` output channels, stride 1, same padding.
    Conv {
        /// Kernel size (1, 3 or 5 in the paper's IP pool).
        k: usize,
        /// Number of output channels.
        out_channels: usize,
    },
    /// Depth-wise convolution with square kernel `k`; channel count is
    /// preserved, stride 1, same padding.
    DwConv {
        /// Kernel size (3, 5 or 7 in the paper's IP pool).
        k: usize,
    },
    /// Pooling with window `k` and stride `k` (non-overlapping).
    Pool {
        /// Pooling flavor.
        kind: PoolKind,
        /// Window and stride.
        k: usize,
    },
    /// Batch normalization (folded into a scale + bias at inference).
    BatchNorm,
    /// Activation function. The choice also fixes the feature-map
    /// quantization (see [`crate::quant`]).
    Activation {
        /// Activation function.
        act: Activation,
    },
    /// Global average pooling over the full spatial extent; reduces
    /// `CxHxW` to `Cx1x1`. Used by the detection head.
    GlobalAvgPool,
}

impl LayerOp {
    /// Convenience constructor for a standard convolution.
    pub fn conv(k: usize, out_channels: usize) -> Self {
        LayerOp::Conv { k, out_channels }
    }

    /// Convenience constructor for a depth-wise convolution.
    pub fn dw_conv(k: usize) -> Self {
        LayerOp::DwConv { k }
    }

    /// Convenience constructor for a max pooling layer.
    pub fn max_pool(k: usize) -> Self {
        LayerOp::Pool {
            kind: PoolKind::Max,
            k,
        }
    }

    /// Convenience constructor for an average pooling layer.
    pub fn avg_pool(k: usize) -> Self {
        LayerOp::Pool {
            kind: PoolKind::Avg,
            k,
        }
    }

    /// Convenience constructor for an activation layer.
    pub fn activation(act: Activation) -> Self {
        LayerOp::Activation { act }
    }

    /// True for operators that consume DSP multipliers on the FPGA
    /// (convolutions); pooling / norm / activation are LUT-only IPs.
    pub fn is_computational(&self) -> bool {
        matches!(self, LayerOp::Conv { .. } | LayerOp::DwConv { .. })
    }

    /// Kernel size of the operator, if it has one.
    pub fn kernel(&self) -> Option<usize> {
        match self {
            LayerOp::Conv { k, .. } | LayerOp::DwConv { k } | LayerOp::Pool { k, .. } => Some(*k),
            _ => None,
        }
    }

    /// Infers the output shape for an input of shape `input`.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] when the operator cannot be
    /// applied: kernel larger than the feature map, pooling that does not
    /// divide the spatial size, or zero-sized inputs.
    pub fn output_shape(&self, input: TensorShape) -> Result<TensorShape, DnnError> {
        if input.c == 0 || input.h == 0 || input.w == 0 {
            return Err(DnnError::ShapeMismatch {
                op: self.to_string(),
                reason: format!("zero-sized input {input}"),
            });
        }
        match *self {
            LayerOp::Conv { k, out_channels } => {
                if k > input.h || k > input.w {
                    return Err(DnnError::ShapeMismatch {
                        op: self.to_string(),
                        reason: format!("kernel {k} exceeds feature map {input}"),
                    });
                }
                if out_channels == 0 {
                    return Err(DnnError::ShapeMismatch {
                        op: self.to_string(),
                        reason: "zero output channels".into(),
                    });
                }
                Ok(input.with_channels(out_channels))
            }
            LayerOp::DwConv { k } => {
                if k > input.h || k > input.w {
                    return Err(DnnError::ShapeMismatch {
                        op: self.to_string(),
                        reason: format!("kernel {k} exceeds feature map {input}"),
                    });
                }
                Ok(input)
            }
            LayerOp::Pool { k, .. } => {
                if k == 0 || input.h < k || input.w < k {
                    return Err(DnnError::ShapeMismatch {
                        op: self.to_string(),
                        reason: format!("pool window {k} exceeds feature map {input}"),
                    });
                }
                Ok(TensorShape::new(input.c, input.h / k, input.w / k))
            }
            LayerOp::BatchNorm | LayerOp::Activation { .. } => Ok(input),
            LayerOp::GlobalAvgPool => Ok(TensorShape::new(input.c, 1, 1)),
        }
    }

    /// Number of multiply-accumulate operations to evaluate this layer
    /// on an input of shape `input` (one image).
    ///
    /// Pooling, normalization and activation are counted as zero MACs:
    /// on the accelerator they are LUT-implemented element-wise IPs whose
    /// cost is modeled separately.
    pub fn macs(&self, input: TensorShape) -> u64 {
        match *self {
            LayerOp::Conv { k, out_channels } => {
                (k * k * input.c * out_channels) as u64 * input.pixels() as u64
            }
            LayerOp::DwConv { k } => (k * k * input.c) as u64 * input.pixels() as u64,
            _ => 0,
        }
    }

    /// Number of trainable weight parameters of this layer for an input
    /// of shape `input` (biases included for convolutions, scale + bias
    /// for batch norm).
    pub fn params(&self, input: TensorShape) -> u64 {
        match *self {
            LayerOp::Conv { k, out_channels } => {
                (k * k * input.c * out_channels + out_channels) as u64
            }
            LayerOp::DwConv { k } => (k * k * input.c + input.c) as u64,
            LayerOp::BatchNorm => (2 * input.c) as u64,
            _ => 0,
        }
    }
}

impl fmt::Display for LayerOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            LayerOp::Conv { k, out_channels } => write!(f, "conv{k}x{k}({out_channels})"),
            LayerOp::DwConv { k } => write!(f, "dw-conv{k}x{k}"),
            LayerOp::Pool { kind, k } => write!(f, "{kind}-pool{k}x{k}"),
            LayerOp::BatchNorm => write!(f, "batchnorm"),
            LayerOp::Activation { act } => write!(f, "{act}"),
            LayerOp::GlobalAvgPool => write!(f, "global-avg-pool"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::Activation;
    use proptest::prelude::*;

    #[test]
    fn conv_preserves_spatial_size() {
        let s = TensorShape::new(3, 80, 160);
        let out = LayerOp::conv(3, 16).output_shape(s).unwrap();
        assert_eq!(out, TensorShape::new(16, 80, 160));
    }

    #[test]
    fn dwconv_preserves_shape() {
        let s = TensorShape::new(24, 40, 80);
        let out = LayerOp::dw_conv(3).output_shape(s).unwrap();
        assert_eq!(out, s);
    }

    #[test]
    fn pool_halves_spatial_size() {
        let s = TensorShape::new(16, 80, 160);
        let out = LayerOp::max_pool(2).output_shape(s).unwrap();
        assert_eq!(out, TensorShape::new(16, 40, 80));
    }

    #[test]
    fn global_pool_collapses_spatial_dims() {
        let s = TensorShape::new(4, 10, 20);
        let out = LayerOp::GlobalAvgPool.output_shape(s).unwrap();
        assert_eq!(out, TensorShape::new(4, 1, 1));
    }

    #[test]
    fn oversized_kernel_is_rejected() {
        let s = TensorShape::new(3, 2, 2);
        assert!(LayerOp::conv(5, 8).output_shape(s).is_err());
        assert!(LayerOp::dw_conv(7).output_shape(s).is_err());
    }

    #[test]
    fn zero_input_is_rejected() {
        let s = TensorShape::new(0, 8, 8);
        assert!(LayerOp::conv(1, 8).output_shape(s).is_err());
    }

    #[test]
    fn zero_out_channels_rejected() {
        let s = TensorShape::new(3, 8, 8);
        assert!(LayerOp::conv(1, 0).output_shape(s).is_err());
    }

    #[test]
    fn conv_mac_count_matches_formula() {
        let s = TensorShape::new(8, 10, 10);
        // 3*3*8*16 MACs per pixel, 100 pixels.
        assert_eq!(LayerOp::conv(3, 16).macs(s), 3 * 3 * 8 * 16 * 100);
    }

    #[test]
    fn dwconv_macs_are_cheaper_than_conv() {
        let s = TensorShape::new(32, 20, 20);
        assert!(LayerOp::dw_conv(3).macs(s) < LayerOp::conv(3, 32).macs(s));
    }

    #[test]
    fn elementwise_ops_have_zero_macs() {
        let s = TensorShape::new(8, 8, 8);
        assert_eq!(LayerOp::BatchNorm.macs(s), 0);
        assert_eq!(LayerOp::activation(Activation::Relu).macs(s), 0);
        assert_eq!(LayerOp::max_pool(2).macs(s), 0);
    }

    #[test]
    fn param_counts() {
        let s = TensorShape::new(8, 8, 8);
        assert_eq!(LayerOp::conv(1, 4).params(s), 8 * 4 + 4);
        assert_eq!(LayerOp::dw_conv(3).params(s), 9 * 8 + 8);
        assert_eq!(LayerOp::BatchNorm.params(s), 16);
        assert_eq!(LayerOp::GlobalAvgPool.params(s), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(LayerOp::conv(3, 64).to_string(), "conv3x3(64)");
        assert_eq!(LayerOp::dw_conv(5).to_string(), "dw-conv5x5");
        assert_eq!(LayerOp::max_pool(2).to_string(), "max-pool2x2");
    }

    #[test]
    fn computational_classification() {
        assert!(LayerOp::conv(1, 8).is_computational());
        assert!(LayerOp::dw_conv(3).is_computational());
        assert!(!LayerOp::max_pool(2).is_computational());
        assert!(!LayerOp::BatchNorm.is_computational());
    }

    // NOTE: the seed's serde_json round-trip test was removed — the
    // offline serde compat shim has no data model to round-trip through.
    // Restore a JSON round-trip here when real serde/serde_json are
    // swapped back in (see [workspace.dependencies] in the root manifest).

    proptest! {
        #[test]
        fn prop_conv_output_channels(c in 1usize..64, h in 5usize..64, w in 5usize..64,
                                     oc in 1usize..128) {
            let out = LayerOp::conv(3, oc)
                .output_shape(TensorShape::new(c, h, w))
                .unwrap();
            prop_assert_eq!(out.c, oc);
            prop_assert_eq!(out.h, h);
            prop_assert_eq!(out.w, w);
        }

        #[test]
        fn prop_pool_never_grows(c in 1usize..64, h in 2usize..64, w in 2usize..64) {
            let s = TensorShape::new(c, h, w);
            let out = LayerOp::max_pool(2).output_shape(s).unwrap();
            prop_assert!(out.h <= h && out.w <= w);
            prop_assert_eq!(out.c, c);
        }

        #[test]
        fn prop_macs_scale_with_pixels(c in 1usize..16, h in 4usize..32, w in 4usize..32) {
            let s1 = TensorShape::new(c, h, w);
            let s2 = TensorShape::new(c, 2 * h, w);
            let op = LayerOp::conv(3, 8);
            prop_assert_eq!(op.macs(s2), 2 * op.macs(s1));
        }

        #[test]
        fn prop_downsampled_shape(c in 1usize..8, h in 4usize..64, w in 4usize..64) {
            let s = TensorShape::new(c, h, w).downsampled(2);
            prop_assert_eq!(s.h, h / 2);
            prop_assert_eq!(s.w, w / 2);
        }
    }
}
