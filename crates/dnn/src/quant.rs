//! Quantization schemes and activation functions.
//!
//! The paper couples the activation function with the feature-map data
//! type (Sec. 5.1.2): plain `Relu` keeps 16-bit feature maps, while the
//! clipped variants `Relu4` / `Relu8` bound the dynamic range so feature
//! maps fit in 8 bits. The bit-width decides how many multiplies a
//! Xilinx DSP48 slice can host per cycle (two 8-bit multiplies can share
//! one DSP, a 16-bit multiply needs a full slice), which is how the
//! quantization scheme `Q_j` of Table 1 enters the resource model.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Activation functions available in the IP pool.
///
/// `Relu4` and `Relu8` clip the output to `[0, 4]` / `[0, 8]`, which
/// bounds the feature-map dynamic range and enables 8-bit feature maps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// Unbounded rectifier; requires 16-bit feature maps.
    Relu,
    /// Rectifier clipped at 4; enables 8-bit feature maps.
    Relu4,
    /// Rectifier clipped at 8; enables 8-bit feature maps.
    Relu8,
}

impl Activation {
    /// All activation variants evaluated in the paper's fine-grained
    /// Bundle evaluation (Fig. 5).
    pub const ALL: [Activation; 3] = [Activation::Relu, Activation::Relu4, Activation::Relu8];

    /// The clipping ceiling, if any.
    pub fn clip(&self) -> Option<f32> {
        match self {
            Activation::Relu => None,
            Activation::Relu4 => Some(4.0),
            Activation::Relu8 => Some(8.0),
        }
    }

    /// The quantization scheme this activation implies for feature maps.
    pub fn quantization(&self) -> Quantization {
        match self {
            Activation::Relu => Quantization::Int16,
            Activation::Relu4 | Activation::Relu8 => Quantization::Int8,
        }
    }

    /// Applies the activation to a single value.
    ///
    /// # Example
    ///
    /// ```
    /// use codesign_dnn::Activation;
    ///
    /// assert_eq!(Activation::Relu4.apply(-1.0), 0.0);
    /// assert_eq!(Activation::Relu4.apply(9.0), 4.0);
    /// assert_eq!(Activation::Relu.apply(9.0), 9.0);
    /// ```
    pub fn apply(&self, x: f32) -> f32 {
        let y = x.max(0.0);
        match self.clip() {
            Some(c) => y.min(c),
            None => y,
        }
    }
}

impl fmt::Display for Activation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Activation::Relu => write!(f, "relu"),
            Activation::Relu4 => write!(f, "relu4"),
            Activation::Relu8 => write!(f, "relu8"),
        }
    }
}

/// Fixed-point quantization scheme `Q_j` for weights and feature maps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Quantization {
    /// 8-bit weights and feature maps (used with `Relu4` / `Relu8`).
    Int8,
    /// 16-bit weights and feature maps (used with plain `Relu`).
    Int16,
}

impl Quantization {
    /// Bit-width of one feature-map element.
    pub fn bits(&self) -> usize {
        match self {
            Quantization::Int8 => 8,
            Quantization::Int16 => 16,
        }
    }

    /// Bytes per feature-map element.
    pub fn bytes(&self) -> usize {
        self.bits() / 8
    }

    /// Multiply-accumulate lanes one DSP48E1 slice can host per cycle
    /// under this scheme. Two 8-bit multiplies can be packed into a
    /// single DSP (the standard `INT8` packing trick); a 16-bit multiply
    /// occupies a full slice.
    pub fn macs_per_dsp(&self) -> usize {
        match self {
            Quantization::Int8 => 2,
            Quantization::Int16 => 1,
        }
    }

    /// Representable range of a signed fixed-point value with this
    /// bit-width, as `(min, max)` integer codes.
    pub fn code_range(&self) -> (i32, i32) {
        let b = self.bits() as u32;
        (-(1i32 << (b - 1)), (1i32 << (b - 1)) - 1)
    }

    /// Quantizes `x` with scale `scale` (value = code * scale), clamping
    /// to the representable range.
    pub fn quantize(&self, x: f32, scale: f32) -> i32 {
        let (lo, hi) = self.code_range();
        let code = (x / scale).round();
        (code as i32).clamp(lo, hi)
    }

    /// Reconstructs a real value from a quantized code.
    pub fn dequantize(&self, code: i32, scale: f32) -> f32 {
        code as f32 * scale
    }
}

impl fmt::Display for Quantization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Quantization::Int8 => write!(f, "int8"),
            Quantization::Int16 => write!(f, "int16"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn relu_variants_clip() {
        assert_eq!(Activation::Relu.apply(100.0), 100.0);
        assert_eq!(Activation::Relu4.apply(100.0), 4.0);
        assert_eq!(Activation::Relu8.apply(100.0), 8.0);
        for a in Activation::ALL {
            assert_eq!(a.apply(-3.0), 0.0);
        }
    }

    #[test]
    fn activation_fixes_quantization() {
        assert_eq!(Activation::Relu.quantization(), Quantization::Int16);
        assert_eq!(Activation::Relu4.quantization(), Quantization::Int8);
        assert_eq!(Activation::Relu8.quantization(), Quantization::Int8);
    }

    #[test]
    fn dsp_packing() {
        assert_eq!(Quantization::Int8.macs_per_dsp(), 2);
        assert_eq!(Quantization::Int16.macs_per_dsp(), 1);
    }

    #[test]
    fn code_ranges() {
        assert_eq!(Quantization::Int8.code_range(), (-128, 127));
        assert_eq!(Quantization::Int16.code_range(), (-32768, 32767));
    }

    #[test]
    fn quantize_clamps() {
        let q = Quantization::Int8;
        assert_eq!(q.quantize(1000.0, 0.1), 127);
        assert_eq!(q.quantize(-1000.0, 0.1), -128);
    }

    #[test]
    fn bytes_match_bits() {
        assert_eq!(Quantization::Int8.bytes(), 1);
        assert_eq!(Quantization::Int16.bytes(), 2);
    }

    proptest! {
        #[test]
        fn prop_quantize_round_trip_error_bounded(x in -4.0f32..4.0, scale in 0.01f32..0.1) {
            let q = Quantization::Int8;
            let code = q.quantize(x, scale);
            let back = q.dequantize(code, scale);
            // Quantization error is at most half a step unless clamped.
            let (lo, hi) = q.code_range();
            if code > lo && code < hi {
                prop_assert!((back - x).abs() <= scale * 0.5 + f32::EPSILON);
            }
        }

        #[test]
        fn prop_activation_output_nonnegative(x in -100.0f32..100.0) {
            for a in Activation::ALL {
                prop_assert!(a.apply(x) >= 0.0);
            }
        }

        #[test]
        fn prop_activation_bounded_by_clip(x in -100.0f32..100.0) {
            prop_assert!(Activation::Relu4.apply(x) <= 4.0);
            prop_assert!(Activation::Relu8.apply(x) <= 8.0);
        }

        #[test]
        fn prop_activation_monotone(a in -50.0f32..50.0, b in -50.0f32..50.0) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            for act in Activation::ALL {
                prop_assert!(act.apply(lo) <= act.apply(hi));
            }
        }
    }
}
