//! Error type shared across the DNN IR.

use std::fmt;

/// Errors produced while constructing or validating DNN models.
///
/// # Example
///
/// ```
/// use codesign_dnn::{DnnError, TensorShape, LayerOp};
///
/// let shape = TensorShape::new(3, 7, 7);
/// // A 2x2 pooling with stride 2 on a 7x7 map is fine, but a conv whose
/// // kernel exceeds the feature map is not.
/// let err = LayerOp::conv(9, 16).output_shape(shape).unwrap_err();
/// assert!(matches!(err, DnnError::ShapeMismatch { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DnnError {
    /// A layer cannot be applied to the given input shape.
    ShapeMismatch {
        /// Human-readable description of the failing operator.
        op: String,
        /// Explanation of the incompatibility.
        reason: String,
    },
    /// A Bundle was constructed with no computational IPs.
    EmptyBundle,
    /// A Bundle requested more computational IPs than the template allows.
    TooManyIps {
        /// Number of computational IPs requested.
        requested: usize,
        /// Maximum allowed by the template (2 for IoT-scale devices).
        limit: usize,
    },
    /// A design-point parameter is outside its legal domain.
    InvalidParameter {
        /// Parameter name, e.g. `"channel expansion factor"`.
        name: String,
        /// Offending value rendered as text.
        value: String,
    },
}

impl fmt::Display for DnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnnError::ShapeMismatch { op, reason } => {
                write!(f, "shape mismatch in {op}: {reason}")
            }
            DnnError::EmptyBundle => write!(f, "bundle contains no computational IPs"),
            DnnError::TooManyIps { requested, limit } => write!(
                f,
                "bundle requests {requested} computational IPs, template limit is {limit}"
            ),
            DnnError::InvalidParameter { name, value } => {
                write!(f, "invalid value {value} for parameter {name}")
            }
        }
    }
}

impl std::error::Error for DnnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = DnnError::EmptyBundle;
        let s = e.to_string();
        assert!(s.starts_with("bundle"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DnnError>();
    }

    #[test]
    fn display_mentions_parameter_name() {
        let e = DnnError::InvalidParameter {
            name: "pf".into(),
            value: "0".into(),
        };
        assert!(e.to_string().contains("pf"));
    }
}
