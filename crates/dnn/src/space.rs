//! The co-design space of Table 1.
//!
//! A [`DesignPoint`] fixes every variable the co-design flow searches
//! over: the Bundle, the number of replications `N`, the down-sampling
//! vector `X`, the channel-expansion vector `Π`, the shared parallel
//! factor `PF` and quantization scheme `Q` of the IP instances, and the
//! activation function. Together these specify both the DNN model and
//! its accelerator (paper Sec. 3.1).

use crate::bundle::{Bundle, SkeletonOp};
use crate::error::DnnError;
use crate::quant::{Activation, Quantization};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Channel-expansion factors available to the SCD unit (paper
/// Sec. 5.2.2): `{1.2, 1.3, 1.5, 1.75, 2}` plus `1.0` ("do not expand").
pub const CHANNEL_EXPANSION_FACTORS: [f64; 6] = [1.0, 1.2, 1.3, 1.5, 1.75, 2.0];

/// Canonical parallel factors swept by the coarse evaluation (the paper
/// sweeps PF = 4/8/16 in Fig. 4 and uses the maximum that fits for the
/// final designs).
pub const PARALLEL_FACTORS: [usize; 7] = [4, 8, 16, 32, 64, 128, 256];

/// Largest legal parallel factor. Any multiple of
/// [`PARALLEL_FACTOR_STEP`] up to this bound is a legal `PF`, matching
/// HLS array-partition factors.
pub const MAX_PARALLEL_FACTOR: usize = 512;

/// Granularity of legal parallel factors.
pub const PARALLEL_FACTOR_STEP: usize = 4;

/// True when `pf` is a legal parallel factor: a positive multiple of
/// [`PARALLEL_FACTOR_STEP`] no larger than [`MAX_PARALLEL_FACTOR`].
pub fn is_legal_parallel_factor(pf: usize) -> bool {
    (PARALLEL_FACTOR_STEP..=MAX_PARALLEL_FACTOR).contains(&pf)
        && pf.is_multiple_of(PARALLEL_FACTOR_STEP)
}

/// A fully specified point in the co-design space.
///
/// # Example
///
/// ```
/// use codesign_dnn::{bundle, space::DesignPoint};
///
/// let bundles = bundle::enumerate_bundles();
/// let p = DesignPoint::initial(bundles[0].clone(), 3);
/// assert_eq!(p.replications(), 3);
/// assert_eq!(p.channel_expansion().len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// The Bundle replicated to build the DNN.
    pub bundle: Bundle,
    /// Number of Bundle replications `N`.
    pub n_replications: usize,
    /// Down-sampling vector `X`: `downsample[i]` is true when a 2x2
    /// down-sampling layer is inserted *after* replication `i`.
    pub downsample: Vec<bool>,
    /// Channel-expansion vector `Π`: `expansion[i]` multiplies the
    /// channel width entering replication `i`. Values are drawn from
    /// [`CHANNEL_EXPANSION_FACTORS`].
    pub expansion: Vec<f64>,
    /// Shared parallel factor `PF` of all IP instances. Kept consistent
    /// across instances to allow IP reuse across layers (Sec. 5.2.1).
    pub parallel_factor: usize,
    /// Activation function; fixes the quantization scheme `Q`.
    pub activation: Activation,
    /// Base channel width entering the first replication.
    pub base_channels: usize,
    /// Upper bound on channel width anywhere in the DNN (e.g. 512 for
    /// DNN1 in Fig. 6). Expansion saturates at this cap.
    pub max_channels: usize,
}

impl DesignPoint {
    /// Creates the initial design point used by DNN initialization
    /// (paper Sec. 5.2.1): `n` replications, down-sampling after every
    /// replication except the last, expansion factor 2 for
    /// channel-expanding Bundles and 1 otherwise, PF = 16, `Relu`.
    pub fn initial(bundle: Bundle, n: usize) -> Self {
        let n = n.max(1);
        let expand = if bundle.can_expand_channels() {
            2.0
        } else {
            1.0
        };
        Self {
            downsample: (0..n).map(|i| i + 1 < n).collect(),
            expansion: (0..n).map(|i| if i == 0 { 1.0 } else { expand }).collect(),
            bundle,
            n_replications: n,
            parallel_factor: 16,
            activation: Activation::Relu,
            base_channels: 32,
            max_channels: 512,
        }
    }

    /// Number of Bundle replications `N`.
    pub fn replications(&self) -> usize {
        self.n_replications
    }

    /// The down-sampling vector `X`.
    pub fn downsampling(&self) -> &[bool] {
        &self.downsample
    }

    /// The channel-expansion vector `Π`.
    pub fn channel_expansion(&self) -> &[f64] {
        &self.expansion
    }

    /// Quantization scheme implied by the activation function.
    pub fn quantization(&self) -> Quantization {
        self.activation.quantization()
    }

    /// Channel width entering replication `i` (0-based), applying the
    /// expansion vector cumulatively from `base_channels` and saturating
    /// at `max_channels`. Widths are rounded to the nearest multiple of
    /// 8 (and at least 8) so that feature maps pack evenly into BRAM
    /// words.
    pub fn channels_at(&self, i: usize) -> usize {
        let mut ch = self.base_channels as f64;
        for rep in 0..=i.min(self.n_replications.saturating_sub(1)) {
            let f = self.expansion.get(rep).copied().unwrap_or(1.0);
            ch = (ch * f).min(self.max_channels as f64);
        }
        let rounded = ((ch / 8.0).round() as usize).max(1) * 8;
        rounded.min(self.max_channels)
    }

    /// Widest channel count the design actually reaches: the realized
    /// maximum of [`channels_at`](Self::channels_at) over every
    /// replication, which can sit below the `max_channels` cap when the
    /// expansion vector never saturates it. This is the width the
    /// paper's Fig. 6 labels report.
    pub fn realized_max_channels(&self) -> usize {
        (0..self.n_replications)
            .map(|i| self.channels_at(i))
            .max()
            .unwrap_or(self.max_channels)
            .min(self.max_channels)
    }

    /// Number of down-sampling layers in the design.
    pub fn downsample_count(&self) -> usize {
        self.downsample.iter().filter(|&&d| d).count()
    }

    /// Validates the point's parameters against their legal domains.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidParameter`] for a zero replication
    /// count, vectors whose length disagrees with `N`, an expansion
    /// factor outside [`CHANNEL_EXPANSION_FACTORS`], an illegal parallel
    /// factor (see [`is_legal_parallel_factor`]), or zero channel widths.
    pub fn validate(&self) -> Result<(), DnnError> {
        if self.n_replications == 0 {
            return Err(DnnError::InvalidParameter {
                name: "n_replications".into(),
                value: "0".into(),
            });
        }
        if self.downsample.len() != self.n_replications {
            return Err(DnnError::InvalidParameter {
                name: "downsample vector length".into(),
                value: self.downsample.len().to_string(),
            });
        }
        if self.expansion.len() != self.n_replications {
            return Err(DnnError::InvalidParameter {
                name: "expansion vector length".into(),
                value: self.expansion.len().to_string(),
            });
        }
        for &f in &self.expansion {
            if !CHANNEL_EXPANSION_FACTORS
                .iter()
                .any(|&g| (g - f).abs() < 1e-9)
            {
                return Err(DnnError::InvalidParameter {
                    name: "channel expansion factor".into(),
                    value: format!("{f}"),
                });
            }
        }
        if !is_legal_parallel_factor(self.parallel_factor) {
            return Err(DnnError::InvalidParameter {
                name: "parallel factor".into(),
                value: self.parallel_factor.to_string(),
            });
        }
        if self.base_channels == 0 || self.max_channels == 0 {
            return Err(DnnError::InvalidParameter {
                name: "channel width".into(),
                value: "0".into(),
            });
        }
        Ok(())
    }

    /// Feeds a canonical, collision-free encoding of the design point to
    /// `sink`, one `u64` word at a time.
    ///
    /// Two points produce the same word sequence exactly when every
    /// field the analytic models read is identical: the Bundle skeleton
    /// (id and operators, encoded exactly rather than hashed), `N`, the
    /// down-sampling vector `X` (length-prefixed and bit-packed into as
    /// many words as needed — slot `i` and slot `i + 64` land in
    /// *different* words, so long vectors never alias), the
    /// channel-expansion vector `Π` as IEEE-754 bit patterns, `PF`, the
    /// activation arm, and the channel-width bounds. Length prefixes
    /// keep the encoding prefix-free, so unequal-length vectors cannot
    /// collide either.
    ///
    /// Estimate caches and candidate de-duplication both build their
    /// keys from this encoding (see [`DesignPoint::canonical_key`]).
    pub fn encode_canonical(&self, sink: &mut impl FnMut(u64)) {
        sink(self.bundle.id().0 as u64);
        let ops = self.bundle.ops();
        sink(ops.len() as u64);
        for op in ops {
            let (tag, k) = match *op {
                SkeletonOp::Conv { k } => (0u64, k),
                SkeletonOp::DwConv { k } => (1u64, k),
            };
            sink((tag << 32) | k as u64);
        }
        sink(self.n_replications as u64);
        sink(self.downsample.len() as u64);
        for chunk in self.downsample.chunks(64) {
            let mut word = 0u64;
            for (i, &d) in chunk.iter().enumerate() {
                word |= (d as u64) << i;
            }
            sink(word);
        }
        sink(self.expansion.len() as u64);
        for &f in &self.expansion {
            sink(f.to_bits());
        }
        sink(self.parallel_factor as u64);
        sink(match self.activation {
            Activation::Relu => 0,
            Activation::Relu4 => 1,
            Activation::Relu8 => 2,
        });
        sink(self.base_channels as u64);
        sink(self.max_channels as u64);
    }

    /// The canonical encoding of
    /// [`encode_canonical`](Self::encode_canonical) as an owned
    /// little-endian byte string — a hashable identity key for design
    /// points (`f64` fields rule out deriving `Hash`/`Eq` directly).
    pub fn canonical_key(&self) -> Vec<u8> {
        let mut key = Vec::with_capacity((24 + self.n_replications) * 8);
        self.encode_canonical(&mut |w| key.extend_from_slice(&w.to_le_bytes()));
        key
    }

    /// Returns a copy with `delta` added to the replication count
    /// (saturating at 1 below), resizing the `X` and `Π` vectors to
    /// match. New entries default to no down-sampling and no expansion.
    pub fn with_replication_delta(&self, delta: isize) -> Self {
        let n = (self.n_replications as isize + delta).max(1) as usize;
        let mut out = self.clone();
        out.n_replications = n;
        out.downsample.resize(n, false);
        out.expansion.resize(n, 1.0);
        out
    }

    /// Returns a copy with the expansion vector moved `delta` steps
    /// through the factor ladder. Positive deltas raise the earliest
    /// non-maximal entries one rung at a time; negative deltas lower the
    /// latest non-minimal entries. The first entry (the stem width) is
    /// never modified.
    pub fn with_expansion_delta(&self, delta: isize) -> Self {
        let mut out = self.clone();
        let steps = delta.unsigned_abs();
        for _ in 0..steps {
            if delta > 0 {
                if let Some(slot) = out
                    .expansion
                    .iter()
                    .skip(1)
                    .position(|&f| f < 2.0 - 1e-9)
                    .map(|p| p + 1)
                {
                    out.expansion[slot] = next_factor_up(out.expansion[slot]);
                } else {
                    break;
                }
            } else if let Some(slot) = out.expansion.iter().rposition(|&f| f > 1.0 + 1e-9) {
                out.expansion[slot] = next_factor_down(out.expansion[slot]);
            } else {
                break;
            }
        }
        out
    }

    /// Returns a copy with the down-sampling vector moved `delta` steps:
    /// positive deltas set the earliest cleared spot, negative deltas
    /// clear the latest set spot. More down-sampling shrinks feature maps
    /// and therefore latency.
    pub fn with_downsample_delta(&self, delta: isize) -> Self {
        let mut out = self.clone();
        let steps = delta.unsigned_abs();
        for _ in 0..steps {
            if delta > 0 {
                if let Some(slot) = out.downsample.iter().position(|&d| !d) {
                    out.downsample[slot] = true;
                } else {
                    break;
                }
            } else if let Some(slot) = out.downsample.iter().rposition(|&d| d) {
                out.downsample[slot] = false;
            } else {
                break;
            }
        }
        out
    }
}

impl fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} x{} pf={} {} ch<={}",
            self.bundle,
            self.n_replications,
            self.parallel_factor,
            self.activation,
            self.max_channels
        )
    }
}

fn next_factor_up(f: f64) -> f64 {
    CHANNEL_EXPANSION_FACTORS
        .iter()
        .copied()
        .find(|&g| g > f + 1e-9)
        .unwrap_or(2.0)
}

fn next_factor_down(f: f64) -> f64 {
    CHANNEL_EXPANSION_FACTORS
        .iter()
        .rev()
        .copied()
        .find(|&g| g < f - 1e-9)
        .unwrap_or(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::{bundle_by_id, BundleId};
    use proptest::prelude::*;

    fn point() -> DesignPoint {
        DesignPoint::initial(bundle_by_id(BundleId(13)).unwrap(), 4)
    }

    #[test]
    fn initial_point_is_valid() {
        point().validate().unwrap();
    }

    #[test]
    fn initial_downsamples_between_bundles() {
        let p = point();
        assert_eq!(p.downsample, vec![true, true, true, false]);
    }

    #[test]
    fn channels_round_to_multiple_of_8() {
        let p = point();
        for i in 0..p.replications() {
            assert_eq!(p.channels_at(i) % 8, 0, "rep {i}");
        }
    }

    #[test]
    fn channels_saturate_at_cap() {
        let mut p = point();
        p.max_channels = 64;
        assert!(p.channels_at(3) <= 64);
    }

    #[test]
    fn replication_delta_resizes_vectors() {
        let p = point().with_replication_delta(2);
        assert_eq!(p.n_replications, 6);
        assert_eq!(p.downsample.len(), 6);
        assert_eq!(p.expansion.len(), 6);
        p.validate().unwrap();
    }

    #[test]
    fn replication_delta_saturates_at_one() {
        let p = point().with_replication_delta(-10);
        assert_eq!(p.n_replications, 1);
        p.validate().unwrap();
    }

    #[test]
    fn expansion_delta_moves_along_ladder() {
        let mut p = point();
        p.expansion = vec![1.0, 1.0, 1.0, 1.0];
        let up = p.with_expansion_delta(1);
        assert_eq!(up.expansion, vec![1.0, 1.2, 1.0, 1.0]);
        let down = up.with_expansion_delta(-1);
        assert_eq!(down.expansion, vec![1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn expansion_delta_never_touches_stem_entry() {
        let p = point().with_expansion_delta(20);
        assert_eq!(p.expansion[0], 1.0);
        p.validate().unwrap();
    }

    #[test]
    fn downsample_delta_sets_and_clears() {
        let mut p = point();
        p.downsample = vec![false; 4];
        let set = p.with_downsample_delta(2);
        assert_eq!(set.downsample, vec![true, true, false, false]);
        let cleared = set.with_downsample_delta(-1);
        assert_eq!(cleared.downsample, vec![true, false, false, false]);
    }

    #[test]
    fn validation_rejects_bad_expansion() {
        let mut p = point();
        p.expansion[1] = 1.4;
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_pf() {
        let mut p = point();
        p.parallel_factor = 5;
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_rejects_mismatched_vectors() {
        let mut p = point();
        p.downsample.pop();
        assert!(p.validate().is_err());
    }

    #[test]
    fn canonical_key_separates_distant_downsample_slots() {
        // Regression: the old cache encoding packed downsample slot `i`
        // at bit `i % 64`, aliasing slots 0 and 64. The canonical
        // encoding is chunked into one word per 64 slots.
        let mut a = DesignPoint::initial(bundle_by_id(BundleId(13)).unwrap(), 65);
        a.downsample = vec![false; 65];
        a.downsample[0] = true;
        let mut b = a.clone();
        b.downsample[0] = false;
        b.downsample[64] = true;
        assert_ne!(a.canonical_key(), b.canonical_key());
    }

    #[test]
    fn canonical_key_matches_equality() {
        let p = point();
        assert_eq!(p.canonical_key(), p.clone().canonical_key());
        for (label, q) in [
            ("reps", p.with_replication_delta(1)),
            ("expansion", p.with_expansion_delta(-1)),
            ("downsample", p.with_downsample_delta(-1)),
            ("pf", {
                let mut q = p.clone();
                q.parallel_factor = 64;
                q
            }),
            ("activation", {
                let mut q = p.clone();
                q.activation = crate::quant::Activation::Relu4;
                q
            }),
            (
                "bundle",
                DesignPoint::initial(bundle_by_id(BundleId(1)).unwrap(), 4),
            ),
        ] {
            assert_ne!(p.canonical_key(), q.canonical_key(), "{label}");
        }
    }

    proptest! {
        #[test]
        fn prop_moves_preserve_validity(reps in 1usize..8, up in 0isize..6, ds in -3isize..4) {
            let p = DesignPoint::initial(bundle_by_id(BundleId(1)).unwrap(), reps)
                .with_expansion_delta(up)
                .with_downsample_delta(ds);
            prop_assert!(p.validate().is_ok());
        }

        #[test]
        fn prop_channels_monotone_nondecreasing(reps in 1usize..8) {
            let p = DesignPoint::initial(bundle_by_id(BundleId(1)).unwrap(), reps);
            for i in 1..reps {
                prop_assert!(p.channels_at(i) >= p.channels_at(i - 1));
            }
        }

        #[test]
        fn prop_expansion_round_trip(steps in 1isize..5) {
            let base = DesignPoint::initial(bundle_by_id(BundleId(13)).unwrap(), 5);
            let mut flat = base.clone();
            flat.expansion = vec![1.0; 5];
            let moved = flat.with_expansion_delta(steps).with_expansion_delta(-steps);
            prop_assert_eq!(moved.expansion, flat.expansion);
        }
    }
}
