//! Bundle-Arch: the hardware-aware DNN building-block template.
//!
//! A *Bundle* (paper Sec. 4.1) is a short sequence of DNN layers used as
//! the basic building block for bottom-up DNN construction. On the FPGA
//! a Bundle corresponds to the set of IP instances that compute it, laid
//! out according to the Tile-Arch template. Because IoT-scale devices
//! are resource-starved, the paper limits each Bundle to at most **two
//! computational IPs** (Sec. 4.2) and enumerates **18 Bundle candidates
//! offline**; [`enumerate_bundles`] reproduces that enumeration.

use crate::error::DnnError;
use crate::layer::LayerOp;
use crate::quant::Activation;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum number of computational IPs per Bundle for IoT-scale devices.
pub const MAX_COMPUTATIONAL_IPS: usize = 2;

/// Number of Bundle candidates generated offline in the paper.
pub const PAPER_BUNDLE_COUNT: usize = 18;

/// One-based identifier of a Bundle candidate, matching the paper's
/// numbering (e.g. Bundle 13 is `<dw-conv3x3 + conv1x1>`, the block used
/// by the final DNN1-3 designs in Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BundleId(pub usize);

impl fmt::Display for BundleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bundle-{}", self.0)
    }
}

/// Skeleton operator of a Bundle: the computational IPs before channel
/// counts are decided. Channel counts are chosen later by the DNN
/// builder, so the skeleton only records *how* output channels relate to
/// the Bundle's output width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SkeletonOp {
    /// Standard convolution with kernel `k`; output channels are set to
    /// the Bundle's output width.
    Conv {
        /// Kernel size.
        k: usize,
    },
    /// Depth-wise convolution with kernel `k`; preserves channels.
    DwConv {
        /// Kernel size.
        k: usize,
    },
}

impl SkeletonOp {
    /// Kernel size of the skeleton operator.
    pub fn kernel(&self) -> usize {
        match self {
            SkeletonOp::Conv { k } | SkeletonOp::DwConv { k } => *k,
        }
    }

    /// True if the op can change the channel count.
    pub fn expands_channels(&self) -> bool {
        matches!(self, SkeletonOp::Conv { .. })
    }
}

impl fmt::Display for SkeletonOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SkeletonOp::Conv { k } => write!(f, "conv{k}x{k}"),
            SkeletonOp::DwConv { k } => write!(f, "dw-conv{k}x{k}"),
        }
    }
}

/// A hardware-aware DNN building block (paper Fig. 2).
///
/// The Bundle stores its computational-IP skeleton; batch normalization
/// and activation follow every computational IP when the Bundle is
/// elaborated by the DNN builder, matching the paper's template where
/// activation / normalization IPs are shared LUT-level resources.
///
/// # Example
///
/// ```
/// use codesign_dnn::bundle::{Bundle, SkeletonOp, BundleId};
///
/// # fn main() -> Result<(), codesign_dnn::DnnError> {
/// // The paper's Bundle 13: <dw-conv3x3 + conv1x1>.
/// let b = Bundle::new(
///     BundleId(13),
///     vec![SkeletonOp::DwConv { k: 3 }, SkeletonOp::Conv { k: 1 }],
/// )?;
/// assert_eq!(b.computational_ip_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Bundle {
    id: BundleId,
    ops: Vec<SkeletonOp>,
}

impl Bundle {
    /// Creates a Bundle from its computational-IP skeleton.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::EmptyBundle`] for an empty skeleton and
    /// [`DnnError::TooManyIps`] when more than
    /// [`MAX_COMPUTATIONAL_IPS`] operators are supplied.
    pub fn new(id: BundleId, ops: Vec<SkeletonOp>) -> Result<Self, DnnError> {
        if ops.is_empty() {
            return Err(DnnError::EmptyBundle);
        }
        if ops.len() > MAX_COMPUTATIONAL_IPS {
            return Err(DnnError::TooManyIps {
                requested: ops.len(),
                limit: MAX_COMPUTATIONAL_IPS,
            });
        }
        Ok(Self { id, ops })
    }

    /// The Bundle's identifier in the paper's 1..=18 numbering.
    pub fn id(&self) -> BundleId {
        self.id
    }

    /// The computational-IP skeleton.
    pub fn ops(&self) -> &[SkeletonOp] {
        &self.ops
    }

    /// Number of computational IPs (1 or 2).
    pub fn computational_ip_count(&self) -> usize {
        self.ops.len()
    }

    /// Largest kernel among the Bundle's computational IPs; a proxy for
    /// the block's receptive-field growth per replication.
    pub fn max_kernel(&self) -> usize {
        self.ops.iter().map(SkeletonOp::kernel).max().unwrap_or(0)
    }

    /// True if any operator in the Bundle is a standard convolution
    /// (i.e. the Bundle can widen the channel count by itself).
    pub fn can_expand_channels(&self) -> bool {
        self.ops.iter().any(SkeletonOp::expands_channels)
    }

    /// True if the Bundle is a depth-wise separable block (depth-wise
    /// conv followed by a point-wise conv), the MobileNet-style pattern.
    pub fn is_depthwise_separable(&self) -> bool {
        matches!(
            self.ops.as_slice(),
            [SkeletonOp::DwConv { .. }, SkeletonOp::Conv { k: 1 }]
        )
    }

    /// Elaborates the Bundle into concrete layer operators for a given
    /// output channel width. Every computational IP is followed by batch
    /// normalization and the supplied activation, as in Fig. 2.
    ///
    /// `out_channels` sets the output width of channel-expanding
    /// convolutions; depth-wise convolutions keep their input width.
    pub fn elaborate(&self, out_channels: usize, act: Activation) -> Vec<LayerOp> {
        let mut layers = Vec::with_capacity(self.ops.len() * 3);
        for op in &self.ops {
            let layer = match *op {
                SkeletonOp::Conv { k } => LayerOp::conv(k, out_channels),
                SkeletonOp::DwConv { k } => LayerOp::dw_conv(k),
            };
            layers.push(layer);
            layers.push(LayerOp::BatchNorm);
            layers.push(LayerOp::activation(act));
        }
        layers
    }
}

impl fmt::Display for Bundle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} <", self.id)?;
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{op}")?;
        }
        write!(f, ">")
    }
}

/// Enumerates the 18 Bundle candidates used in the paper's experiments
/// (Sec. 4.2), ordered so that `result[i]` has `BundleId(i + 1)`.
///
/// The enumeration follows the paper's IP pool — conv 1x1 / 3x3 / 5x5
/// and depth-wise conv 3x3 / 5x5 / 7x7, with at most two computational
/// IPs per Bundle — and is fixed so that the Bundles called out in the
/// paper keep their published identities:
///
/// * Bundle 13 is `<dw-conv3x3 + conv1x1>` (the block of DNN1-3, Fig. 6);
/// * the coarse-evaluation Pareto set is {1, 3, 13, 15, 17} (Fig. 4).
///
/// # Example
///
/// ```
/// use codesign_dnn::bundle::enumerate_bundles;
///
/// let bundles = enumerate_bundles();
/// assert_eq!(bundles.len(), 18);
/// assert!(bundles[12].is_depthwise_separable());
/// ```
pub fn enumerate_bundles() -> Vec<Bundle> {
    use SkeletonOp::{Conv, DwConv};
    let skeletons: [&[SkeletonOp]; PAPER_BUNDLE_COUNT] = [
        // 1-6: single computational IP.
        &[Conv { k: 3 }],
        &[Conv { k: 1 }],
        &[Conv { k: 5 }],
        &[DwConv { k: 3 }],
        &[DwConv { k: 5 }],
        &[DwConv { k: 7 }],
        // 7-12: two standard convolutions.
        &[Conv { k: 1 }, Conv { k: 3 }],
        &[Conv { k: 3 }, Conv { k: 1 }],
        &[Conv { k: 1 }, Conv { k: 5 }],
        &[Conv { k: 3 }, Conv { k: 3 }],
        &[Conv { k: 5 }, Conv { k: 1 }],
        &[Conv { k: 3 }, Conv { k: 5 }],
        // 13-18: depth-wise / point-wise combinations.
        &[DwConv { k: 3 }, Conv { k: 1 }],
        &[DwConv { k: 5 }, Conv { k: 1 }],
        &[Conv { k: 1 }, DwConv { k: 3 }],
        &[DwConv { k: 7 }, Conv { k: 1 }],
        &[Conv { k: 1 }, DwConv { k: 5 }],
        &[DwConv { k: 3 }, Conv { k: 3 }],
    ];
    skeletons
        .iter()
        .enumerate()
        .map(|(i, ops)| {
            Bundle::new(BundleId(i + 1), ops.to_vec())
                .expect("static bundle table is within template limits")
        })
        .collect()
}

/// Looks up a Bundle candidate by its paper identifier.
///
/// Returns `None` when `id` is outside `1..=18`.
pub fn bundle_by_id(id: BundleId) -> Option<Bundle> {
    if id.0 == 0 || id.0 > PAPER_BUNDLE_COUNT {
        return None;
    }
    Some(enumerate_bundles().swap_remove(id.0 - 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn eighteen_candidates() {
        assert_eq!(enumerate_bundles().len(), PAPER_BUNDLE_COUNT);
    }

    #[test]
    fn ids_are_sequential() {
        for (i, b) in enumerate_bundles().iter().enumerate() {
            assert_eq!(b.id(), BundleId(i + 1));
        }
    }

    #[test]
    fn bundle_13_is_mobilenet_block() {
        let b = bundle_by_id(BundleId(13)).unwrap();
        assert!(b.is_depthwise_separable());
        assert_eq!(b.to_string(), "bundle-13 <dw-conv3x3 + conv1x1>");
    }

    #[test]
    fn bundle_1_is_conv3x3() {
        let b = bundle_by_id(BundleId(1)).unwrap();
        assert_eq!(b.ops(), &[SkeletonOp::Conv { k: 3 }]);
    }

    #[test]
    fn bundle_3_is_conv5x5() {
        let b = bundle_by_id(BundleId(3)).unwrap();
        assert_eq!(b.ops(), &[SkeletonOp::Conv { k: 5 }]);
    }

    #[test]
    fn all_bundles_within_ip_limit() {
        for b in enumerate_bundles() {
            assert!(b.computational_ip_count() <= MAX_COMPUTATIONAL_IPS);
            assert!(b.computational_ip_count() >= 1);
        }
    }

    #[test]
    fn empty_bundle_rejected() {
        assert_eq!(
            Bundle::new(BundleId(1), vec![]).unwrap_err(),
            DnnError::EmptyBundle
        );
    }

    #[test]
    fn oversized_bundle_rejected() {
        let ops = vec![SkeletonOp::Conv { k: 1 }; 3];
        assert!(matches!(
            Bundle::new(BundleId(1), ops).unwrap_err(),
            DnnError::TooManyIps { requested: 3, .. }
        ));
    }

    #[test]
    fn out_of_range_lookup() {
        assert!(bundle_by_id(BundleId(0)).is_none());
        assert!(bundle_by_id(BundleId(19)).is_none());
        assert!(bundle_by_id(BundleId(18)).is_some());
    }

    #[test]
    fn elaboration_interleaves_norm_and_activation() {
        let b = bundle_by_id(BundleId(13)).unwrap();
        let layers = b.elaborate(64, Activation::Relu4);
        assert_eq!(layers.len(), 6);
        assert_eq!(layers[0], LayerOp::dw_conv(3));
        assert_eq!(layers[1], LayerOp::BatchNorm);
        assert_eq!(layers[2], LayerOp::activation(Activation::Relu4));
        assert_eq!(layers[3], LayerOp::conv(1, 64));
    }

    #[test]
    fn enumeration_has_no_duplicate_skeletons() {
        let bundles = enumerate_bundles();
        for i in 0..bundles.len() {
            for j in (i + 1)..bundles.len() {
                assert_ne!(bundles[i].ops(), bundles[j].ops(), "bundles {i} and {j}");
            }
        }
    }

    #[test]
    fn max_kernel_reported() {
        assert_eq!(bundle_by_id(BundleId(16)).unwrap().max_kernel(), 7);
        assert_eq!(bundle_by_id(BundleId(2)).unwrap().max_kernel(), 1);
    }

    proptest! {
        #[test]
        fn prop_elaboration_length(id in 1usize..=18, ch in 1usize..256) {
            let b = bundle_by_id(BundleId(id)).unwrap();
            let layers = b.elaborate(ch, Activation::Relu);
            prop_assert_eq!(layers.len(), b.computational_ip_count() * 3);
        }

        #[test]
        fn prop_elaborated_convs_use_requested_width(id in 1usize..=18, ch in 1usize..256) {
            let b = bundle_by_id(BundleId(id)).unwrap();
            for layer in b.elaborate(ch, Activation::Relu8) {
                if let LayerOp::Conv { out_channels, .. } = layer {
                    prop_assert_eq!(out_channels, ch);
                }
            }
        }
    }
}
