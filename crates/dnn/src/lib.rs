//! DNN intermediate representation for FPGA/DNN co-design.
//!
//! This crate implements the *software half* of the co-design space from
//! the DAC'19 paper "FPGA/DNN Co-Design: An Efficient Design Methodology
//! for IoT Intelligence on the Edge" (Hao, Zhang, et al.):
//!
//! * [`layer`] — the DNN layer operators backed by configurable hardware
//!   IP templates (convolution, depth-wise convolution, pooling,
//!   normalization, activation) together with shape inference and
//!   MAC / parameter accounting.
//! * [`quant`] — quantization schemes. The paper couples the activation
//!   function choice (`Relu` / `Relu4` / `Relu8`) with the feature-map
//!   bit-width (16-bit / 8-bit), which in turn decides how many
//!   multiply-accumulate lanes a DSP slice can host.
//! * [`bundle`] — *Bundle-Arch*: the hardware-aware DNN building-block
//!   template (Fig. 2 of the paper) and the offline enumeration of the
//!   18 Bundle candidates used in the paper's experiments.
//! * [`space`] — the co-design space variables of Table 1: Bundle
//!   choice, replication count `N`, channel-expansion vector `Π`,
//!   down-sampling vector `X`, parallel factor `PF`, quantization `Q`.
//! * [`builder`] — bottom-up DNN construction: a [`space::DesignPoint`]
//!   is elaborated into a concrete [`Dnn`] with a stem, `N` Bundle
//!   replications, down-sampling spots, channel expansion and a
//!   bounding-box detection head.
//!
//! # Example
//!
//! ```
//! use codesign_dnn::{bundle, builder::DnnBuilder, space::DesignPoint};
//!
//! # fn main() -> Result<(), codesign_dnn::DnnError> {
//! // Bundle 13 of the paper: <dw-conv3x3 + conv1x1>.
//! let bundles = bundle::enumerate_bundles();
//! let point = DesignPoint::initial(bundles[12].clone(), 4);
//! let dnn = DnnBuilder::new().build(&point)?;
//! assert!(dnn.total_macs() > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod bundle;
pub mod error;
pub mod layer;
pub mod quant;
pub mod space;

mod dnn;

pub use builder::DnnBuilder;
pub use bundle::{Bundle, BundleId};
pub use dnn::{Dnn, LayerInstance};
pub use error::DnnError;
pub use layer::{LayerOp, TensorShape};
pub use quant::{Activation, Quantization};
pub use space::DesignPoint;
