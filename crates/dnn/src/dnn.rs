//! Concrete DNN models: an elaborated sequence of layer instances with
//! resolved shapes.

use crate::layer::{LayerOp, TensorShape};
use crate::quant::Quantization;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One layer of a concrete DNN with resolved input / output shapes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerInstance {
    /// The operator.
    pub op: LayerOp,
    /// Input activation shape.
    pub input: TensorShape,
    /// Output activation shape.
    pub output: TensorShape,
    /// Index of the Bundle replication this layer belongs to, or `None`
    /// for stem / head layers outside any Bundle.
    pub bundle_rep: Option<usize>,
}

impl LayerInstance {
    /// MACs to evaluate this layer on one image.
    pub fn macs(&self) -> u64 {
        self.op.macs(self.input)
    }

    /// Trainable parameter count.
    pub fn params(&self) -> u64 {
        self.op.params(self.input)
    }

    /// Bytes of the output feature map under quantization `q`.
    pub fn output_bytes(&self, q: Quantization) -> u64 {
        (self.output.elements() * q.bytes()) as u64
    }
}

impl fmt::Display for LayerInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} : {} -> {}", self.op, self.input, self.output)
    }
}

/// A concrete DNN: an ordered list of layer instances from input image
/// to detection output, produced by [`crate::builder::DnnBuilder`].
///
/// # Example
///
/// ```
/// use codesign_dnn::{bundle, builder::DnnBuilder, space::DesignPoint};
///
/// # fn main() -> Result<(), codesign_dnn::DnnError> {
/// let b = bundle::enumerate_bundles()[0].clone();
/// let dnn = DnnBuilder::new().build(&DesignPoint::initial(b, 2))?;
/// println!("{} layers, {} MMACs", dnn.layers().len(), dnn.total_macs() / 1_000_000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dnn {
    layers: Vec<LayerInstance>,
    input: TensorShape,
    quantization: Quantization,
    name: String,
}

impl Dnn {
    /// Assembles a DNN from its parts. Intended for use by the builder;
    /// shapes are assumed to chain correctly.
    pub(crate) fn from_parts(
        name: String,
        input: TensorShape,
        quantization: Quantization,
        layers: Vec<LayerInstance>,
    ) -> Self {
        debug_assert!(layers.windows(2).all(|w| w[0].output == w[1].input));
        Self {
            layers,
            input,
            quantization,
            name,
        }
    }

    /// Human-readable model name (e.g. `"bundle-13 x4"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Input image shape.
    pub fn input_shape(&self) -> TensorShape {
        self.input
    }

    /// Output shape of the final layer.
    pub fn output_shape(&self) -> TensorShape {
        self.layers.last().map(|l| l.output).unwrap_or(self.input)
    }

    /// Quantization scheme of weights and feature maps.
    pub fn quantization(&self) -> Quantization {
        self.quantization
    }

    /// The layer instances in execution order.
    pub fn layers(&self) -> &[LayerInstance] {
        &self.layers
    }

    /// Total number of layers `L` (Table 1).
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Total MACs for one image.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(LayerInstance::macs).sum()
    }

    /// Total trainable parameters.
    pub fn total_params(&self) -> u64 {
        self.layers.iter().map(LayerInstance::params).sum()
    }

    /// Total weight bytes under the model's quantization scheme.
    pub fn weight_bytes(&self) -> u64 {
        self.total_params() * self.quantization.bytes() as u64
    }

    /// Largest intermediate feature map in bytes — the quantity that
    /// must fit (tiled) in on-chip BRAM.
    pub fn peak_activation_bytes(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.output_bytes(self.quantization))
            .max()
            .unwrap_or(0)
    }

    /// Widest channel count anywhere in the model.
    pub fn max_channels(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.output.c.max(l.input.c))
            .max()
            .unwrap_or(self.input.c)
    }

    /// Iterates over the computational layers (convolutions) only.
    pub fn computational_layers(&self) -> impl Iterator<Item = &LayerInstance> {
        self.layers.iter().filter(|l| l.op.is_computational())
    }
}

impl fmt::Display for Dnn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} ({} layers, {:.1} MMAC, {:.1} KB weights, {})",
            self.name,
            self.layer_count(),
            self.total_macs() as f64 / 1e6,
            self.weight_bytes() as f64 / 1024.0,
            self.quantization
        )?;
        for layer in &self.layers {
            writeln!(f, "  {layer}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DnnBuilder;
    use crate::bundle::{bundle_by_id, BundleId};
    use crate::space::DesignPoint;

    fn sample_dnn() -> Dnn {
        let b = bundle_by_id(BundleId(13)).unwrap();
        DnnBuilder::new()
            .build(&DesignPoint::initial(b, 3))
            .unwrap()
    }

    #[test]
    fn shapes_chain() {
        let dnn = sample_dnn();
        for w in dnn.layers().windows(2) {
            assert_eq!(w[0].output, w[1].input);
        }
    }

    #[test]
    fn totals_are_positive() {
        let dnn = sample_dnn();
        assert!(dnn.total_macs() > 0);
        assert!(dnn.total_params() > 0);
        assert!(dnn.peak_activation_bytes() > 0);
    }

    #[test]
    fn weight_bytes_respect_quantization() {
        let dnn = sample_dnn();
        assert_eq!(
            dnn.weight_bytes(),
            dnn.total_params() * dnn.quantization().bytes() as u64
        );
    }

    #[test]
    fn display_lists_every_layer() {
        let dnn = sample_dnn();
        let text = dnn.to_string();
        assert_eq!(
            text.lines().count(),
            dnn.layer_count() + 1,
            "one header line plus one line per layer"
        );
    }

    #[test]
    fn computational_layers_are_convs() {
        let dnn = sample_dnn();
        assert!(dnn.computational_layers().count() > 0);
        for l in dnn.computational_layers() {
            assert!(l.op.is_computational());
        }
    }
}
