//! Umbrella crate re-exporting the FPGA/DNN co-design workspace.
pub use codesign_baselines as baselines;
pub use codesign_core as core;
pub use codesign_core::parallel;
pub use codesign_dataset as dataset;
pub use codesign_dnn as dnn;
pub use codesign_hls as hls;
pub use codesign_nn as nn;
pub use codesign_serve as serve;
pub use codesign_sim as sim;
pub use codesign_store as store;
