//! Workspace smoke test: the tier-1 guard that the whole co-design
//! pipeline — Bundle enumeration, coarse evaluation, SCD search,
//! Auto-HLS generation, simulation — stays wired together. Runs the
//! smallest useful `FlowConfig` and asserts the flow yields a non-empty
//! Pareto set over its candidates.

use fpga_dnn_codesign::core::flow::{CoDesignFlow, FlowConfig};
use fpga_dnn_codesign::core::pareto::{pareto_front, ParetoPoint};
use fpga_dnn_codesign::sim::device::pynq_z1;

#[test]
fn tiny_flow_yields_nonempty_pareto_set() {
    let flow = CoDesignFlow::new(FlowConfig {
        targets_fps: vec![20.0],
        candidates_per_bundle: 1,
        coarse_pf_sweep: vec![16],
        ..FlowConfig::for_device(pynq_z1())
    });
    let out = flow.run().expect("tiny co-design flow must run end-to-end");

    assert!(!out.selected_bundles.is_empty(), "no bundles selected");
    assert!(!out.candidates.is_empty(), "search produced no candidates");
    assert!(!out.designs.is_empty(), "no design met the FPS target");

    let points: Vec<ParetoPoint> = out
        .candidates
        .iter()
        .map(|(_, c)| ParetoPoint {
            latency_ms: c.latency_ms,
            accuracy: c.accuracy,
        })
        .collect();
    let front = pareto_front(&points);
    assert!(!front.is_empty(), "Pareto front over candidates is empty");
    // Every front member must actually be a candidate index.
    assert!(front.iter().all(|&i| i < points.len()));
}
