//! Determinism suite for the parallel co-design engine.
//!
//! Two contracts under test:
//!
//! * `CoDesignFlow` output is a pure function of `FlowConfig` — same
//!   seed ⇒ byte-identical output, for *any* worker count, because
//!   every work item derives a private SplitMix64 seed and results
//!   merge in work-item order.
//! * `ProxyEvaluator` (real batched proxy training on the GEMM compute
//!   engine) is bit-identical to the naive per-image reference kernels,
//!   at any worker count.
//!
//! The `CODESIGN_PARALLELISM` environment variable (also read by the
//! `exp_*` binaries) picks the "parallel" side of the 1-vs-N
//! comparison, so CI can sweep thread counts in a matrix; it defaults
//! to 4.

use codesign_core::accuracy::ProxyEvaluator;
use codesign_core::flow::{CoDesignFlow, FlowConfig, FlowOutput};
use codesign_core::parallel::Parallelism;
use codesign_dnn::bundle::{bundle_by_id, BundleId};
use codesign_dnn::space::DesignPoint;
use codesign_nn::train::TrainConfig;
use codesign_nn::Engine;
use codesign_sim::device::pynq_z1;

/// Worker count of the parallel arm (`CODESIGN_PARALLELISM`, default 4).
fn parallel_arm() -> usize {
    match Parallelism::from_env("CODESIGN_PARALLELISM") {
        Parallelism::Fixed(n) => n,
        Parallelism::Auto => 4,
    }
}

fn run_flow(seed: u64, threads: usize) -> FlowOutput {
    CoDesignFlow::new(FlowConfig {
        targets_fps: vec![15.0],
        candidates_per_bundle: 2,
        coarse_pf_sweep: vec![16],
        seed,
        parallelism: Parallelism::Fixed(threads),
        ..FlowConfig::for_device(pynq_z1())
    })
    .run()
    .expect("flow runs")
}

/// Full structural equality of two flow outputs, including the
/// generated C and the simulated reports.
fn assert_identical(a: &FlowOutput, b: &FlowOutput) {
    assert_eq!(a.coarse, b.coarse, "coarse evaluations differ");
    assert_eq!(a.selected_bundles, b.selected_bundles);
    assert_eq!(a.candidates, b.candidates, "candidate sets differ");
    assert_eq!(a.designs.len(), b.designs.len());
    for (x, y) in a.designs.iter().zip(&b.designs) {
        assert_eq!(x.point, y.point);
        assert_eq!(x.accuracy, y.accuracy);
        assert_eq!(x.latency_ms, y.latency_ms);
        assert_eq!(x.report, y.report);
        assert_eq!(x.code, y.code, "generated C drifted");
    }
}

#[test]
fn same_seed_same_output() {
    let threads = parallel_arm();
    let a = run_flow(2019, threads);
    let b = run_flow(2019, threads);
    assert_identical(&a, &b);
}

#[test]
fn parallel_output_matches_sequential() {
    let seq = run_flow(2019, 1);
    let par = run_flow(2019, parallel_arm());
    assert_identical(&seq, &par);
    // The shared estimate cache sees the same queries either way.
    assert_eq!(
        seq.cache_stats.total(),
        par.cache_stats.total(),
        "query volume must not depend on the worker count"
    );
}

#[test]
fn distinct_seeds_explore_but_stay_in_the_band() {
    let threads = parallel_arm();
    let a = run_flow(2019, threads);
    let b = run_flow(4242, threads);
    // Different trajectories...
    assert_ne!(
        a.candidates
            .iter()
            .map(|(_, c)| c.point.clone())
            .collect::<Vec<_>>(),
        b.candidates
            .iter()
            .map(|(_, c)| c.point.clone())
            .collect::<Vec<_>>(),
        "distinct seeds should explore distinct candidate sets"
    );
    // ...but every candidate of either run still lands inside its
    // target's FPS acceptance window.
    for out in [&a, &b] {
        for (fps_target, c) in &out.candidates {
            let target_ms = 1000.0 / fps_target;
            let tolerance_ms = target_ms - 1000.0 / (fps_target + 1.5);
            assert!(
                (c.latency_ms - target_ms).abs() < tolerance_ms,
                "candidate at {:.2} ms outside the {fps_target} FPS band (±{tolerance_ms:.2} ms)",
                c.latency_ms
            );
        }
    }
}

/// A small proxy-training run with the given NN compute engine.
fn proxy_iou(engine: Engine) -> f64 {
    let b = bundle_by_id(BundleId(13)).expect("bundle 13");
    let mut point = DesignPoint::initial(b, 1);
    point.base_channels = 8;
    let eval = ProxyEvaluator {
        image_h: 16,
        image_w: 32,
        train_samples: 16,
        eval_samples: 8,
        config: TrainConfig {
            epochs: 4,
            ..TrainConfig::default()
        },
        engine,
        ..ProxyEvaluator::default()
    };
    eval.evaluate(&point).expect("proxy training runs")
}

/// Batched GEMM proxy training is bit-identical to the naive per-image
/// reference path, at 1 worker and at the matrix-selected worker count
/// — the compute engine only changes wall clock, never results.
#[test]
fn proxy_training_is_engine_and_worker_invariant() {
    let reference = proxy_iou(Engine::Reference);
    for workers in [1, parallel_arm()] {
        let gemm = proxy_iou(Engine::Gemm(Parallelism::Fixed(workers)));
        assert_eq!(
            reference.to_bits(),
            gemm.to_bits(),
            "GEMM engine at {workers} workers diverged from the reference path: \
             {reference} vs {gemm}"
        );
    }
}

/// Golden pin for the incremental-estimation engine and the sharded
/// estimate cache: the flow output must be **byte-identical to the
/// pre-incremental seed** (captured from the full-rebuild,
/// single-lock-cache implementation of PR 3) at any worker count.
///
/// Catches any drift in the `EstimatePlan` fold order, the canonical
/// cache key, or the cache sharding — all of which must be pure
/// optimizations. The cache totals are pinned too: the plan issues
/// exactly one memoized lookup per priced design point, like the old
/// `estimate_point`-per-probe loop did.
#[test]
fn flow_output_matches_full_rebuild_seed_golden() {
    for threads in [1, parallel_arm()] {
        let out = run_flow(2019, threads);
        assert_eq!(out.candidates.len(), 14, "threads={threads}");
        let d = &out.designs[0];
        assert_eq!(d.point.bundle.id(), BundleId(13));
        assert_eq!(d.point.n_replications, 5);
        assert_eq!(d.point.downsample, vec![true, false, false, false, false]);
        assert_eq!(d.point.expansion, vec![1.0, 2.0, 2.0, 1.0, 1.0]);
        assert_eq!(d.point.parallel_factor, 200);
        assert_eq!(d.point.activation, codesign_dnn::quant::Activation::Relu4);
        assert_eq!(d.accuracy.to_bits(), 0x3fe676d5ffad6350);
        assert_eq!(d.latency_ms.to_bits(), 0x404975a1cac08312);
        assert_eq!(d.report.total_cycles, 5_091_900);
        assert_eq!(
            out.cache_stats.total(),
            5_053,
            "probe-for-probe parity with the full-rebuild estimator broke"
        );
    }
}

#[test]
fn cache_stats_report_real_reuse() {
    let out = run_flow(2019, parallel_arm());
    assert!(
        out.cache_stats.hit_rate() > 0.5,
        "estimate-cache hit rate {:.1}% — memoization broke ({})",
        out.cache_stats.hit_rate() * 100.0,
        out.cache_stats
    );
}
