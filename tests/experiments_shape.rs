//! Shape assertions for every paper artifact: the regenerated tables
//! and figures must preserve the paper's qualitative claims even though
//! absolute numbers come from a simulator rather than a board.

use codesign_bench::experiments::{ablation, default_device, fig4, fig5, fig6, table2};
use codesign_core::evaluate::EvalMethod;
use codesign_core::parallel::Parallelism;
use codesign_dnn::bundle::BundleId;

#[test]
fn fig4_both_methods_agree_on_selection() {
    let dev = default_device();
    let (evals_a, sel_a) = fig4(EvalMethod::FixedHeadTail, &dev, Parallelism::Auto).unwrap();
    let (evals_b, sel_b) = fig4(EvalMethod::Replicated { n: 3 }, &dev, Parallelism::Auto).unwrap();
    assert_eq!(sel_a, sel_b, "the paper's methods must agree (Sec. 5.1.1)");
    assert_eq!(sel_a, [1, 3, 13, 15, 17].map(BundleId).to_vec());
    // 18 bundles x 3 PFs per method.
    assert_eq!(evals_a.len(), 54);
    assert_eq!(evals_b.len(), 54);
}

#[test]
fn fig4_pf_trades_resources_for_latency() {
    let dev = default_device();
    let (evals, _) = fig4(EvalMethod::Replicated { n: 3 }, &dev, Parallelism::Auto).unwrap();
    for id in 1..=18usize {
        let mut per_bundle: Vec<_> = evals
            .iter()
            .filter(|e| e.bundle_id == BundleId(id))
            .collect();
        per_bundle.sort_by_key(|e| e.parallel_factor);
        for w in per_bundle.windows(2) {
            assert!(
                w[1].latency_ms <= w[0].latency_ms,
                "bundle {id}: higher PF must not be slower"
            );
            assert!(
                w[1].resources.dsp >= w[0].resources.dsp,
                "bundle {id}: higher PF must not use fewer DSPs"
            );
            assert_eq!(
                w[1].accuracy, w[0].accuracy,
                "bundle {id}: PF must not change accuracy"
            );
        }
    }
}

#[test]
fn fig5_reproduces_bundle_characteristics() {
    let rows = fig5(&default_device()).unwrap();
    let pick = |id: usize, act: codesign_dnn::quant::Activation, reps: usize| {
        rows.iter()
            .find(|r| {
                r.bundle_id == BundleId(id) && r.activation == act && r.n_replications == reps
            })
            .unwrap()
    };
    use codesign_dnn::quant::Activation::{Relu, Relu4};
    // "Bundle 1 and 3 are more promising in high accuracy DNNs with more
    // resource and longer latency, while Bundle 13 is more favorable in
    // DNNs targeting real-time responses."
    for id in [1usize, 3] {
        assert!(pick(id, Relu, 3).accuracy > pick(13, Relu, 3).accuracy);
        assert!(pick(id, Relu, 3).latency_ms > pick(13, Relu, 3).latency_ms);
    }
    // Relu variants trade accuracy for latency via quantization.
    for id in [1usize, 3, 13, 15, 17] {
        let relu = pick(id, Relu, 3);
        let relu4 = pick(id, Relu4, 3);
        assert!(relu.accuracy > relu4.accuracy, "bundle {id}");
        assert!(relu.latency_ms >= relu4.latency_ms, "bundle {id}");
    }
}

#[test]
fn fig6_bands_fill_and_order() {
    let out = fig6(&default_device(), Parallelism::Auto).unwrap();
    assert!(
        out.explored.len() >= 20,
        "too few explored designs: {}",
        out.explored.len()
    );
    assert_eq!(out.best.len(), 3, "one winner per FPS target");
    // Tighter targets cost accuracy (the Fig. 6 staircase).
    assert!(out.best[0].accuracy >= out.best[1].accuracy);
    assert!(out.best[1].accuracy >= out.best[2].accuracy);
    // Winners respect their bands approximately.
    for b in &out.best {
        assert!(
            (b.fps - b.target_fps).abs() <= 3.0,
            "winner at {} FPS misses the {} FPS band",
            b.fps,
            b.target_fps
        );
    }
}

#[test]
fn table2_headline_claims() {
    let (ours, published) = table2(&default_device()).unwrap();
    let dnn1_100 = &ours[0];
    let dnn1_150 = &ours[1];
    let ssd = &published[0];
    let gpu_best = &published[3];

    // IoU: DNN1 beats the FPGA 1st place by several points but stays
    // below the best GPU entry (paper: +6.2 / -1.2).
    assert!(dnn1_100.iou - ssd.iou > 0.04);
    assert!(gpu_best.iou > dnn1_100.iou);

    // Power: well under the SSD entry at both clocks (paper: -40%).
    assert!(dnn1_150.power_w < ssd.power_w * 0.75);

    // Energy efficiency: >= 2x vs FPGA 1st place, >= 3x vs GPU 1st
    // place (paper: 2.5x and 3.6x).
    assert!(ssd.j_per_pic / dnn1_150.j_per_pic >= 2.0);
    assert!(gpu_best.j_per_pic / dnn1_150.j_per_pic >= 3.0);

    // FPS: ours at 150 MHz beats the SSD entry (paper: 2.48x with DNN3).
    let dnn3_150 = &ours[5];
    assert!(dnn3_150.fps / ssd.fps >= 2.0);

    // 150 MHz rows are exactly 1.5x the 100 MHz rows in FPS.
    for pair in ours.chunks(2) {
        assert!((pair[1].fps / pair[0].fps - 1.5).abs() < 1e-9);
    }
}

#[test]
fn ablation_reproduces_methodology_gap() {
    let out = ablation(&default_device()).unwrap();
    assert!(
        out.codesign_iou - out.topdown.iou > 0.02,
        "bottom-up co-design must beat top-down compress-then-map"
    );
    assert!(
        out.topdown.prune_rounds >= 2,
        "SSD must need real compression"
    );
}
