//! Failure injection across crate boundaries: degenerate devices,
//! infeasible constraints and malformed designs must fail loudly with
//! typed errors, never silently succeed.

use codesign_core::accuracy::AccuracyModel;
use codesign_core::flow::{CoDesignFlow, FlowConfig, FlowError};
use codesign_core::search::{scd_search, ScdConfig};
use codesign_dnn::builder::DnnBuilder;
use codesign_dnn::bundle::{bundle_by_id, Bundle, BundleId};
use codesign_dnn::error::DnnError;
use codesign_dnn::space::DesignPoint;
use codesign_hls::calibrate::calibrate_bundle;
use codesign_hls::model::HlsEstimator;
use codesign_sim::device::pynq_z1;
use codesign_sim::error::SimError;
use codesign_sim::pipeline::{simulate, synthesize, AccelConfig};

#[test]
fn zero_bandwidth_device_is_rejected_everywhere() {
    let mut dev = pynq_z1();
    dev.dram_bytes_per_cycle = 0.0;
    let b = bundle_by_id(BundleId(1)).unwrap();
    let point = DesignPoint::initial(b.clone(), 2);
    let dnn = DnnBuilder::new().build(&point).unwrap();
    assert!(matches!(
        simulate(&dnn, &AccelConfig::for_point(&point), &dev),
        Err(SimError::InvalidDevice { .. })
    ));
    assert!(calibrate_bundle(&b, &dev).is_err());
}

#[test]
fn empty_bundle_cannot_exist() {
    assert_eq!(
        Bundle::new(BundleId(1), vec![]).unwrap_err(),
        DnnError::EmptyBundle
    );
}

#[test]
fn over_downsampled_design_fails_at_elaboration() {
    let b = bundle_by_id(BundleId(3)).unwrap(); // conv5x5 needs 5x5 maps
    let mut point = DesignPoint::initial(b, 10);
    point.downsample = vec![true; 10];
    point.expansion = vec![1.0; 10];
    let err = DnnBuilder::new().build(&point).unwrap_err();
    assert!(matches!(err, DnnError::ShapeMismatch { .. }));
}

#[test]
fn oversized_accelerator_fails_synthesis_not_simulation() {
    let b = bundle_by_id(BundleId(10)).unwrap();
    let mut point = DesignPoint::initial(b, 3);
    point.parallel_factor = 512;
    let dnn = DnnBuilder::new().build(&point).unwrap();
    let cfg = AccelConfig::for_point(&point);
    // Simulation still reports numbers (the search needs estimates for
    // infeasible points)...
    let report = simulate(&dnn, &cfg, &pynq_z1()).unwrap();
    assert!(report.total_cycles > 0);
    // ...but synthesis enforces the budget.
    assert!(matches!(
        synthesize(&dnn, &cfg, &pynq_z1()),
        Err(SimError::ResourceOverflow { .. })
    ));
}

#[test]
fn scd_with_impossible_target_terminates_empty() {
    let b = bundle_by_id(BundleId(13)).unwrap();
    let params = calibrate_bundle(&b, &pynq_z1()).unwrap();
    let est = HlsEstimator::new(params, pynq_z1());
    let found = scd_search(
        &b,
        &est,
        &AccuracyModel::paper_calibrated(),
        &ScdConfig {
            latency_target_ms: 1e-6,
            tolerance_ms: 1e-7,
            candidates: 3,
            max_iterations: 60,
            ..ScdConfig::default()
        },
    );
    assert!(found.is_empty());
}

#[test]
fn flow_without_targets_errors() {
    use fpga_dnn_codesign::core::flow::ConfigError;
    let flow = CoDesignFlow::new(FlowConfig {
        targets_fps: vec![],
        ..FlowConfig::for_device(pynq_z1())
    });
    assert!(matches!(
        flow.run(),
        Err(FlowError::InvalidConfig(ConfigError::EmptyTargets))
    ));
}

#[test]
fn invalid_design_points_never_elaborate() {
    let b = bundle_by_id(BundleId(1)).unwrap();
    for mutation in [
        |p: &mut DesignPoint| p.parallel_factor = 7,
        |p: &mut DesignPoint| p.expansion[0] = 3.0,
        |p: &mut DesignPoint| p.base_channels = 0,
        |p: &mut DesignPoint| p.downsample.push(true),
    ] {
        let mut point = DesignPoint::initial(b.clone(), 3);
        mutation(&mut point);
        assert!(
            DnnBuilder::new().build(&point).is_err(),
            "mutated point elaborated: {point:?}"
        );
    }
}
