//! End-to-end integration: the full co-design flow of Fig. 1, from
//! Bundle enumeration to generated C, on the PYNQ-Z1 device model.

use codesign_core::flow::{CoDesignFlow, FlowConfig};
use codesign_dnn::bundle::BundleId;
use codesign_sim::device::pynq_z1;

fn small_flow() -> CoDesignFlow {
    CoDesignFlow::new(FlowConfig {
        targets_fps: vec![15.0, 20.0],
        candidates_per_bundle: 2,
        coarse_pf_sweep: vec![16],
        ..FlowConfig::for_device(pynq_z1())
    })
}

#[test]
fn flow_reproduces_paper_bundle_selection() {
    let out = small_flow().run().expect("flow runs");
    assert_eq!(
        out.selected_bundles,
        [1, 3, 13, 15, 17].map(BundleId).to_vec(),
        "coarse evaluation must select the paper's Pareto bundles"
    );
}

#[test]
fn every_published_design_fits_and_has_code() {
    let out = small_flow().run().expect("flow runs");
    assert!(!out.designs.is_empty());
    let device = pynq_z1();
    for d in &out.designs {
        device
            .check_fit(&d.report.resources)
            .unwrap_or_else(|e| panic!("design for {} FPS overflows: {e}", d.target_fps));
        // Generated C is structurally sound: balanced braces, a top
        // function, one bundle marker per replication.
        let balance: i64 = d
            .code
            .chars()
            .map(|c| match c {
                '{' => 1,
                '}' => -1,
                _ => 0,
            })
            .sum();
        assert_eq!(balance, 0, "unbalanced braces in generated C");
        assert!(d.code.contains("top_dnn"));
        for rep in 0..d.point.n_replications {
            assert!(
                d.code.contains(&format!("bundle replication {rep}")),
                "missing replication {rep} in generated C"
            );
        }
    }
}

#[test]
fn designs_get_more_accurate_with_looser_targets() {
    let out = small_flow().run().expect("flow runs");
    if out.designs.len() == 2 {
        let slow = &out.designs[0]; // 15 FPS target
        let fast = &out.designs[1]; // 20 FPS target
        assert!(
            slow.accuracy >= fast.accuracy,
            "looser target should afford at least as much accuracy: {} vs {}",
            slow.accuracy,
            fast.accuracy
        );
    }
}

#[test]
fn flow_candidates_cover_multiple_bundles() {
    let out = small_flow().run().expect("flow runs");
    let distinct: std::collections::BTreeSet<usize> = out
        .candidates
        .iter()
        .map(|(_, c)| c.point.bundle.id().0)
        .collect();
    assert!(
        distinct.len() >= 2,
        "search collapsed to a single bundle: {distinct:?}"
    );
}

#[test]
fn candidate_estimates_agree_with_simulation() {
    // The analytic estimates steering the search must track the full
    // simulator within a factor of two on the winning designs.
    let out = small_flow().run().expect("flow runs");
    for d in &out.designs {
        let (analytic, simulated) = (
            1000.0 / d.target_fps, // the target the estimate satisfied
            d.latency_ms,
        );
        let ratio = simulated / analytic;
        assert!(
            (0.4..2.0).contains(&ratio),
            "sim {simulated} ms vs target {analytic} ms (ratio {ratio})"
        );
    }
}
