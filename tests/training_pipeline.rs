//! Cross-crate training pipeline: dataset -> IR -> executable network
//! -> proxy training -> quantized inference, i.e. the software half of
//! the co-design loop end to end.

use codesign_dataset::{mean_iou, BoundingBox, SyntheticDataset};
use codesign_dnn::builder::DnnBuilder;
use codesign_dnn::bundle::{bundle_by_id, BundleId};
use codesign_dnn::quant::Quantization;
use codesign_dnn::space::DesignPoint;
use codesign_dnn::TensorShape;
use codesign_nn::network::Network;
use codesign_nn::quantized::QuantizedNetwork;
use codesign_nn::train::{TrainConfig, Trainer};

const H: usize = 16;
const W: usize = 32;

fn tiny_point(bundle: usize) -> DesignPoint {
    let mut p = DesignPoint::initial(bundle_by_id(BundleId(bundle)).unwrap(), 1);
    p.base_channels = 8;
    p.max_channels = 16;
    p
}

fn train_small(bundle: usize, epochs: usize) -> (Network, Vec<[f32; 4]>, Vec<codesign_nn::Tensor>) {
    let dnn = DnnBuilder::new()
        .input(TensorShape::new(3, H, W))
        .build(&tiny_point(bundle))
        .unwrap();
    let mut net = Network::from_dnn(&dnn, 99).unwrap();
    let ds = SyntheticDataset::new(H, W, 31);
    let (images, boxes) = ds.training_pairs(40);
    Trainer::new(TrainConfig {
        epochs,
        learning_rate: 0.08,
        momentum: 0.9,
        batch_size: 8,
    })
    .train(&mut net, &images[..32], &boxes[..32]);
    (net, boxes[32..].to_vec(), images[32..].to_vec())
}

#[test]
fn trained_network_beats_untrained_network() {
    let dnn = DnnBuilder::new()
        .input(TensorShape::new(3, H, W))
        .build(&tiny_point(13))
        .unwrap();
    let untrained = Network::from_dnn(&dnn, 99).unwrap();
    let (trained, eval_boxes, eval_images) = train_small(13, 12);

    let score = |net: &Network| {
        let preds: Vec<BoundingBox> = eval_images
            .iter()
            .map(|x| BoundingBox::from_prediction(net.forward(x).data()))
            .collect();
        let truths: Vec<BoundingBox> = eval_boxes
            .iter()
            .map(|b| BoundingBox::new(b[0] as f64, b[1] as f64, b[2] as f64, b[3] as f64))
            .collect();
        mean_iou(&preds, &truths)
    };
    assert!(
        score(&trained) > score(&untrained),
        "training did not improve IoU: {} vs {}",
        score(&trained),
        score(&untrained)
    );
}

#[test]
fn quantized_inference_stays_close_after_training() {
    let (net, _, eval_images) = train_small(13, 8);
    let q16 = QuantizedNetwork::quantize(&net, Quantization::Int16);
    let q8 = QuantizedNetwork::quantize(&net, Quantization::Int8);
    let d16 = q16.deviation_from(&net, &eval_images);
    let d8 = q8.deviation_from(&net, &eval_images);
    assert!(d16 <= d8 + 1e-6, "int16 must deviate no more than int8");
    assert!(d16 < 0.08, "int16 deviation too large: {d16}");
    assert!(d8 < 0.25, "int8 deviation suspiciously large: {d8}");
}

#[test]
fn every_selected_bundle_is_trainable() {
    // The five Pareto bundles must all run through the training stack.
    for id in [1usize, 3, 13, 15, 17] {
        let dnn = DnnBuilder::new()
            .input(TensorShape::new(3, H, W))
            .build(&tiny_point(id))
            .unwrap_or_else(|e| panic!("bundle {id}: {e}"));
        let mut net = Network::from_dnn(&dnn, 7).unwrap();
        let ds = SyntheticDataset::new(H, W, id as u64);
        let (images, boxes) = ds.training_pairs(8);
        let report = Trainer::new(TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        })
        .train(&mut net, &images, &boxes);
        assert!(report.final_loss().is_finite(), "bundle {id} diverged");
    }
}

#[test]
fn dataset_and_network_shapes_agree() {
    let ds = SyntheticDataset::new(H, W, 0);
    let sample = &ds.samples(1)[0];
    let dnn = DnnBuilder::new()
        .input(TensorShape::new(3, H, W))
        .build(&tiny_point(15))
        .unwrap();
    let net = Network::from_dnn(&dnn, 0).unwrap();
    assert_eq!(
        net.input_shape(),
        [
            sample.image.channels(),
            sample.image.height(),
            sample.image.width()
        ]
    );
    let out = net.forward(&sample.image);
    assert_eq!(out.len(), 4);
}
